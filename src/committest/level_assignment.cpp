#include "committest/level_assignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace crooks::ct {

void LevelAssignment::recompute_mask() {
  mask_ = bit(fallback_);
  for (IsolationLevel l : column_) mask_ |= bit(l);
  // Canonicalize: a column where every entry equals the fallback is the
  // uniform assignment — drop it so is_uniform() is a mask compare and the
  // uniform delegation fires even when the caller materialized the column.
  if (mask_ == bit(fallback_)) column_.clear();
}

LevelAssignment LevelAssignment::from_annotations(const model::CompiledHistory& ch,
                                                  IsolationLevel fallback) {
  if (ch.annotated_level_count() == 0) return LevelAssignment(fallback);
  std::vector<IsolationLevel> column(ch.size(), fallback);
  for (std::size_t d = 0; d < ch.size(); ++d) {
    const std::uint8_t t = ch.level_tag(static_cast<model::TxnIdx>(d));
    if (t != model::CompiledHistory::kNoLevelTag) {
      column[d] = static_cast<IsolationLevel>(t);
    }
  }
  return LevelAssignment(fallback, std::move(column));
}

LevelAssignment LevelAssignment::from_annotations(
    const model::CompiledHistory& ch, IsolationLevel fallback,
    const std::unordered_map<TxnId, IsolationLevel>& overrides) {
  if (overrides.empty()) return from_annotations(ch, fallback);
  std::vector<IsolationLevel> column(ch.size(), fallback);
  for (std::size_t d = 0; d < ch.size(); ++d) {
    const std::uint8_t t = ch.level_tag(static_cast<model::TxnIdx>(d));
    if (t != model::CompiledHistory::kNoLevelTag) {
      column[d] = static_cast<IsolationLevel>(t);
    }
  }
  for (const auto& [id, lvl] : overrides) {
    const std::size_t d = ch.txns().dense_index_if(id);
    if (d == model::TransactionSet::npos) {
      throw std::invalid_argument("level override names unknown transaction " +
                                  crooks::to_string(id));
    }
    column[d] = lvl;
  }
  return LevelAssignment(fallback, std::move(column));
}

std::vector<IsolationLevel> LevelAssignment::present() const {
  std::vector<IsolationLevel> out;
  for (IsolationLevel l : kAllLevels) {
    if (mask_ & bit(l)) out.push_back(l);
  }
  return out;
}

bool LevelAssignment::all_in(std::initializer_list<IsolationLevel> set) const {
  std::uint16_t allowed = 0;
  for (IsolationLevel l : set) allowed |= bit(l);
  return (mask_ & ~allowed) == 0;
}

IsolationLevel LevelAssignment::meet() const {
  IsolationLevel m = fallback_;
  for (IsolationLevel l : present()) m = meet_of(m, l);
  return m;
}

std::string LevelAssignment::describe() const {
  if (is_uniform()) return std::string(name_of(fallback_));
  std::string out = "mixed{";
  bool first = true;
  for (IsolationLevel l : present()) {
    if (!first) out += ", ";
    first = false;
    out += name_of(l);
  }
  out += "} (default ";
  out += name_of(fallback_);
  out += ")";
  return out;
}

LevelAssignment LevelPolicy::resolve_prefix(const model::CompiledHistory& ch) const {
  if (is_trivially_uniform()) return LevelAssignment(fallback);
  std::vector<IsolationLevel> column(ch.size(), fallback);
  if (use_annotations) {
    for (std::size_t d = 0; d < ch.size(); ++d) {
      const std::uint8_t t = ch.level_tag(static_cast<model::TxnIdx>(d));
      if (t != model::CompiledHistory::kNoLevelTag) {
        column[d] = static_cast<IsolationLevel>(t);
      }
    }
  }
  for (const auto& [id, lvl] : overrides) {
    const std::size_t d = ch.txns().dense_index_if(id);
    if (d != model::TransactionSet::npos) column[d] = lvl;
  }
  return LevelAssignment(fallback, std::move(column));
}

LevelAssignment LevelPolicy::resolve(const model::CompiledHistory& ch) const {
  if (is_trivially_uniform()) return LevelAssignment(fallback);
  if (!use_annotations) {
    // Overrides only: a column that starts uniform at the fallback.
    std::vector<IsolationLevel> column(ch.size(), fallback);
    for (const auto& [id, lvl] : overrides) {
      const std::size_t d = ch.txns().dense_index_if(id);
      if (d == model::TransactionSet::npos) {
        throw std::invalid_argument("level override names unknown transaction " +
                                    crooks::to_string(id));
      }
      column[d] = lvl;
    }
    return LevelAssignment(fallback, std::move(column));
  }
  return LevelAssignment::from_annotations(ch, fallback, overrides);
}

}  // namespace crooks::ct
