file(REMOVE_RECURSE
  "CMakeFiles/crooks_replication.dir/geo_store.cpp.o"
  "CMakeFiles/crooks_replication.dir/geo_store.cpp.o.d"
  "CMakeFiles/crooks_replication.dir/simulator.cpp.o"
  "CMakeFiles/crooks_replication.dir/simulator.cpp.o.d"
  "libcrooks_replication.a"
  "libcrooks_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
