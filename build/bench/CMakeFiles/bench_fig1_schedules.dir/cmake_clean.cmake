file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_schedules.dir/bench_fig1_schedules.cpp.o"
  "CMakeFiles/bench_fig1_schedules.dir/bench_fig1_schedules.cpp.o.d"
  "bench_fig1_schedules"
  "bench_fig1_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
