// See sharded_online.hpp. Threading model in one paragraph: ONE submitter
// (stage 1) pushes epoch tasks into per-shard bounded rings; each shard
// worker pops, decodes, and pushes a ShardResult into the shared result
// ring; the merge thread buffers results per epoch, and once all shards have
// reported an epoch it appends the reassembled batch to the authoritative
// OnlineChecker strictly in epoch order. Every cross-thread handoff goes
// through a ring (release on push, acquire on pop), so no other
// synchronization is needed for the task/result payloads; `stopped_` is the
// only shared flag, and `result_` is merge-thread-private until finish()
// joins.
#include "checker/sharded_online.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <span>
#include <utility>

namespace crooks::checker {

namespace {

/// Result-ring capacity: every shard can have all its in-flight epochs plus
/// its stop marker queued before the merge thread drains any of them.
std::size_t result_capacity(const ShardedOnlineChecker::Options& o) {
  return std::max<std::size_t>(1, o.shards) * (o.max_inflight_epochs + 1);
}

obs::Labels shard_labels(std::size_t shard) {
  return {{"shard", std::to_string(shard)}};
}

}  // namespace

ShardedOnlineChecker::ShardedOnlineChecker(Options opts, EpochCallback on_epoch)
    : opts_(std::move(opts)),
      on_epoch_(std::move(on_epoch)),
      chk_(opts_.track_assigned
               ? OnlineChecker(OnlineChecker::kTrackAssigned,
                               opts_.assigned_fallback)
               : OnlineChecker(opts_.levels)),
      results_(result_capacity(opts_)),
      epochs_counter_(obs::Registry::global().counter(
          "crooks_ingest_epochs_total",
          "Epochs appended by the pipelined ingest's merge stage")),
      merge_stalls_counter_(obs::Registry::global().counter(
          "crooks_ingest_merge_stalls_total",
          "Times the merge stage found its result ring empty and parked")),
      dropped_counter_(obs::Registry::global().counter(
          "crooks_ingest_ring_dropped_total",
          "Blocks or results lost in an ingest ring (tripwire: must be 0; "
          "full rings block the producer instead of dropping)")),
      merge_depth_gauge_(obs::Registry::global().gauge(
          "crooks_ingest_merge_queue_depth",
          "Shard results waiting in the merge stage's ring")) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (opts_.max_inflight_epochs == 0) opts_.max_inflight_epochs = 1;
  chk_.set_window(opts_.window);
  if (opts_.on_checker) opts_.on_checker(chk_);

  obs::Registry& reg = obs::Registry::global();
  in_.reserve(opts_.shards);
  shard_metrics_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    // +1: the stop task must always fit behind a full complement of epochs.
    in_.push_back(std::make_unique<MpmcQueue<std::unique_ptr<ShardTask>>>(
        opts_.max_inflight_epochs + 1));
    shard_metrics_.push_back(ShardMetrics{
        reg.counter("crooks_ingest_blocks_total",
                    "Raw blocks decoded by an ingest shard", shard_labels(s)),
        reg.counter("crooks_ingest_shard_appends_total",
                    "Transactions decoded and shipped to the merge stage by "
                    "an ingest shard",
                    shard_labels(s)),
        reg.counter("crooks_ingest_submit_stalls_total",
                    "Times stage 1 found this shard's input ring full and "
                    "blocked (backpressure)",
                    shard_labels(s)),
        reg.counter("crooks_ingest_result_stalls_total",
                    "Times this shard found the result ring full and blocked",
                    shard_labels(s)),
        reg.gauge("crooks_ingest_queue_depth",
                  "Epoch tasks waiting in this shard's input ring",
                  shard_labels(s)),
        reg.histogram("crooks_ingest_shard_decode_seconds",
                      "Decode latency of one shard's slice of an epoch "
                      "(occupancy = sum over count)",
                      obs::latency_buckets_seconds(), shard_labels(s))});
  }

  shard_threads_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    shard_threads_.emplace_back([this, s] { shard_loop(s); });
  }
  merge_thread_ = std::thread([this] { merge_loop(); });
}

ShardedOnlineChecker::~ShardedOnlineChecker() { finish(); }

bool ShardedOnlineChecker::submit_tasks(std::vector<RawBlock> blocks,
                                        ShardTask::Kind kind) {
  const std::uint64_t epoch = ++next_epoch_;
  std::vector<std::unique_ptr<ShardTask>> tasks(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    tasks[s] = std::make_unique<ShardTask>();
    tasks[s]->kind = kind;
    tasks[s]->epoch = epoch;
  }
  for (std::uint32_t seq = 0; seq < blocks.size(); ++seq) {
    const std::size_t s = blocks[seq].route % opts_.shards;
    tasks[s]->blocks.emplace_back(seq, std::move(blocks[seq]));
  }
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    if (!in_[s]->try_push_ref(tasks[s])) {
      shard_metrics_[s].submit_stalls.inc();
      in_[s]->push(std::move(tasks[s]));
    }
    shard_metrics_[s].queue_depth.set(
        static_cast<std::int64_t>(in_[s]->approx_size()));
  }
  return true;
}

bool ShardedOnlineChecker::submit(std::vector<RawBlock> blocks) {
  if (finished_ || stopped()) return false;
  if (blocks.empty()) return true;
  return submit_tasks(std::move(blocks), ShardTask::Kind::kAppend);
}

bool ShardedOnlineChecker::submit_error(std::vector<RawBlock> pending,
                                        std::uint64_t line,
                                        std::string message) {
  if (finished_ || stopped()) return false;
  // Written before the epoch's tasks are pushed; the merge thread reads the
  // fields only after popping this epoch's results, so the ring's
  // release/acquire chain orders the accesses.
  stage1_error_epoch_ = next_epoch_ + 1;
  stage1_error_line_ = line;
  stage1_error_ = std::move(message);
  return submit_tasks(std::move(pending), ShardTask::Kind::kValidateOnly);
}

void ShardedOnlineChecker::shard_loop(std::size_t shard) {
  ShardMetrics& m = shard_metrics_[shard];
  MpmcQueue<std::unique_ptr<ShardTask>>& in = *in_[shard];
  for (;;) {
    std::unique_ptr<ShardTask> task = in.pop();
    m.queue_depth.set(static_cast<std::int64_t>(in.approx_size()));
    auto result = std::make_unique<ShardResult>();
    result->kind = task->kind;
    result->epoch = task->epoch;
    const bool stop = task->kind == ShardTask::Kind::kStop;
    // Once the pipeline stopped, later epochs are discarded by the merge
    // stage whole — skip the decode work, but still report the (empty)
    // result so the merge's per-epoch accounting stays complete.
    if (!stop && !stopped()) {
      const auto t0 = std::chrono::steady_clock::now();
      for (auto& [seq, block] : task->blocks) {
        m.blocks.inc();
        DecodedBlock decoded = opts_.decoder(block);
        if (!decoded.error.empty()) {
          // Blocks within a shard arrive in sequence (= line) order, so the
          // first failure is the shard's minimum; the rest of the slice
          // would be discarded with the epoch anyway.
          result->error = std::move(decoded.error);
          result->error_line = decoded.error_line;
          break;
        }
        for (model::Transaction& t : decoded.txns) {
          result->txns.emplace_back(seq, std::move(t));
        }
      }
      m.appends.inc(result->txns.size());
      if (obs::enabled()) {
        m.decode_seconds.observe(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count());
      }
    }
    if (!results_.try_push_ref(result)) {
      m.result_stalls.inc();
      results_.push(std::move(result));
    }
    merge_depth_gauge_.set(static_cast<std::int64_t>(results_.approx_size()));
    if (stop) return;
  }
}

void ShardedOnlineChecker::merge_loop() {
  std::map<std::uint64_t, std::vector<std::unique_ptr<ShardResult>>> pending;
  std::uint64_t next = 1;
  std::size_t stops_seen = 0;
  while (stops_seen < opts_.shards) {
    std::unique_ptr<ShardResult> r;
    if (!results_.try_pop(r)) {
      merge_stalls_counter_.inc();
      r = results_.pop();
    }
    merge_depth_gauge_.set(static_cast<std::int64_t>(results_.approx_size()));
    if (r->kind == ShardTask::Kind::kStop) {
      ++stops_seen;
      continue;
    }
    std::vector<std::unique_ptr<ShardResult>>& bucket = pending[r->epoch];
    bucket.push_back(std::move(r));
    // Epochs complete out of order; append strictly in submission order.
    for (auto it = pending.find(next);
         it != pending.end() && it->second.size() == opts_.shards;
         it = pending.find(next)) {
      std::vector<std::unique_ptr<ShardResult>> batch = std::move(it->second);
      pending.erase(it);
      ++next;
      process_epoch(std::move(batch));
    }
  }
  // Every task produced exactly one result and every shard's results precede
  // its stop marker, so nothing incomplete can remain once all stops arrived.
  assert(pending.empty());
}

void ShardedOnlineChecker::process_epoch(
    std::vector<std::unique_ptr<ShardResult>> results) {
  if (stopped()) return;  // a stopped pipeline discards later epochs whole

  // Error reconciliation: the first error in LINE order wins — shard decode
  // errors are ordered by the failing block's first line, and a stage-1
  // stream error (always past every pending block) competes on its own line.
  const std::string* error = nullptr;
  std::uint64_t error_line = 0;
  for (const std::unique_ptr<ShardResult>& r : results) {
    if (!r->error.empty() && (error == nullptr || r->error_line < error_line)) {
      error = &r->error;
      error_line = r->error_line;
    }
  }
  const bool validate_only = results.front()->kind == ShardTask::Kind::kValidateOnly;
  if (validate_only && results.front()->epoch == stage1_error_epoch_ &&
      (error == nullptr || stage1_error_line_ < error_line)) {
    error = &stage1_error_;
    error_line = stage1_error_line_;
  }
  if (error != nullptr) {
    result_.error = *error;
    stopped_.store(true, std::memory_order_release);
    return;
  }
  if (validate_only) return;  // decoded clean; nothing is appended after stop

  // Reassemble stream order: concatenate the shards' (seq, txn) pairs and
  // stable-sort by block sequence (stable keeps a block's transactions in
  // declaration order).
  std::vector<std::pair<std::uint32_t, model::Transaction>> seq_txns;
  std::size_t total = 0;
  for (const std::unique_ptr<ShardResult>& r : results) total += r->txns.size();
  seq_txns.reserve(total);
  for (std::unique_ptr<ShardResult>& r : results) {
    for (auto& st : r->txns) seq_txns.push_back(std::move(st));
  }
  std::stable_sort(seq_txns.begin(), seq_txns.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<model::Transaction> batch;
  batch.reserve(seq_txns.size());
  for (auto& [seq, txn] : seq_txns) batch.push_back(std::move(txn));
  // A decoder may legitimately produce no transactions; the serial loop
  // would see an empty batch and skip the flush, so skip the report too.
  if (batch.empty()) return;

  const OnlineChecker::Stats before = chk_.stats();
  const std::vector<ct::IsolationLevel> alive_before = chk_.surviving_levels();
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t accepted =
      chk_.append_all(std::span<const model::Transaction>(batch));
  const auto t1 = std::chrono::steady_clock::now();

  EpochReport rep;
  rep.epoch = ++result_.epochs;
  rep.transactions = accepted;
  rep.duplicates = chk_.stats().duplicates_ignored - before.duplicates_ignored;
  rep.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (ct::IsolationLevel level : alive_before) {
    if (!chk_.status(level).ok) rep.died.push_back(level);
  }
  rep.checker = &chk_;
  rep.watermark = chk_.watermark();
  rep.resident_txns = chk_.resident_txns();
  rep.resident_ops = chk_.resident_ops();

  result_.transactions += accepted;
  result_.duplicates += rep.duplicates;
  epochs_counter_.inc();

  if (on_epoch_ && !on_epoch_(rep)) {
    stopped_.store(true, std::memory_order_release);
  }
}

const ShardedOnlineChecker::Result& ShardedOnlineChecker::finish() {
  if (finished_) return result_;
  finished_ = true;
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    auto stop = std::make_unique<ShardTask>();
    stop->kind = ShardTask::Kind::kStop;
    in_[s]->push(std::move(stop));
  }
  for (std::thread& t : shard_threads_) t.join();
  merge_thread_.join();
  return result_;
}

}  // namespace crooks::checker
