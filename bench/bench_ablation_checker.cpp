// Ablation: checker engines.
//
// The graph engine (constructive theorems, polynomial) vs the exhaustive
// engine (branch-and-bound, factorial) on the same store-generated
// observations, across observation-set sizes. This quantifies why the
// equivalence theorems matter operationally: they turn an exponential
// search into a serialization-graph pass.
//
// The *Scaling benchmarks track the parallel layer: check_batch throughput
// (histories/sec) and branch-parallel refutation latency as thread count
// grows. Each run exports {threads, histories_per_sec, speedup} counters, so
// a JSON export (--benchmark_format=json > BENCH_checker.json) records the
// scaling curve; `speedup` is relative to the threads=1 run of the same
// benchmark within the same process.
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "checker/checker.hpp"
#include "checker/reference.hpp"
#include "model/compiled.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

store::RunResult run_of_size(std::size_t n) {
  const auto intents = wl::generate_mix({.transactions = n,
                                         .keys = std::max<std::size_t>(4, n / 3),
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = n});
  return store::run(intents, {.mode = store::CCMode::kSnapshotIsolation,
                              .seed = 2 * n + 1, .concurrency = 4, .retries = 3});
}

void BM_GraphEngine(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_graph(ct::IsolationLevel::kSerializable, r.observations, opts)
            .outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphEngine)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_ExhaustiveEngine(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_exhaustive(ct::IsolationLevel::kSerializable, r.observations,
                                  opts)
            .outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExhaustiveEngine)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Complexity();

/// Refutation is where the engines truly diverge: on an UNSATISFIABLE
/// instance (write skew padded with independent writers) the exhaustive
/// engine must exhaust the pruned permutation tree, while the graph engine
/// answers from one phenomena pass.
model::TransactionSet unsat_instance(std::size_t n) {
  using model::TxnBuilder;
  std::vector<model::Transaction> txns;
  txns.push_back(TxnBuilder(1).read(0, 0).read(1, 0).write(0).at(0, 1).build());
  txns.push_back(TxnBuilder(2).read(0, 0).read(1, 0).write(1).at(2, 3).build());
  for (std::uint64_t i = 3; i <= n; ++i) {
    txns.push_back(TxnBuilder(i)
                       .write(Key{i + 10})
                       .at(static_cast<Timestamp>(2 * i), static_cast<Timestamp>(2 * i + 1))
                       .build());
  }
  return model::TransactionSet(std::move(txns));
}

void BM_ExhaustiveRefutation(benchmark::State& state) {
  const model::TransactionSet txns = unsat_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_exhaustive(ct::IsolationLevel::kSerializable, txns).outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExhaustiveRefutation)->Arg(4)->Arg(6)->Arg(8)->Arg(9)->Complexity();

void BM_GraphRefutation(benchmark::State& state) {
  const model::TransactionSet txns = unsat_instance(static_cast<std::size_t>(state.range(0)));
  std::unordered_map<Key, std::vector<TxnId>> vo;
  for (const model::Transaction& t : txns) {
    for (Key k : t.write_set()) vo[k].push_back(t.id());
  }
  checker::CheckOptions opts;
  opts.version_order = &vo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker::check_graph(ct::IsolationLevel::kSerializable, txns, opts).outcome);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphRefutation)->Arg(4)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_ReadStateAnalysis(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  const model::Execution e =
      *checker::check(ct::IsolationLevel::kReadCommitted, r.observations).witness;
  for (auto _ : state) {
    const model::ReadStateAnalysis analysis(r.observations, e);
    benchmark::DoNotOptimize(analysis.preread_all());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadStateAnalysis)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)->Complexity();

/// Seconds-per-iteration baselines keyed by benchmark name, captured at
/// threads == 1 (google-benchmark runs the Arg(1) instance first).
std::map<std::string, double>& baselines() {
  static std::map<std::string, double> b;
  return b;
}

void record_scaling(benchmark::State& state, const std::string& name,
                    double secs_per_iter, double items_per_iter) {
  const auto threads = static_cast<double>(state.range(0));
  if (threads == 1) baselines()[name] = secs_per_iter;
  const double base = baselines().count(name) ? baselines()[name] : secs_per_iter;
  state.counters["threads"] = threads;
  state.counters["histories_per_sec"] = items_per_iter / secs_per_iter;
  state.counters["speedup"] = base / secs_per_iter;
  // Scaling curves are meaningless without the core count of the host that
  // produced them; record it in every exported row.
  state.counters["host_cpus"] = std::thread::hardware_concurrency();
}

/// check_batch over many independent histories — the store-runner /
/// fuzz-suite shape. Half are store-generated (satisfiable, witness found
/// fast), half are write-skew refutations (the whole pruned tree must be
/// exhausted), mirroring a real audit stream. No version order, so every
/// history goes through the exhaustive engine (threshold raised past the
/// history sizes).
std::vector<model::TransactionSet> batch_histories(std::size_t count) {
  std::vector<model::TransactionSet> histories;
  histories.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    histories.push_back(i % 2 == 0 ? run_of_size(9 + i % 3).observations
                                   : unsat_instance(8 + i % 3));
  }
  return histories;
}

void BM_CheckBatchScaling(benchmark::State& state) {
  constexpr std::size_t kHistories = 64;
  static const std::vector<model::TransactionSet> histories = batch_histories(kHistories);

  checker::CheckOptions opts;
  opts.exhaustive_threshold = 64;
  opts.threads = static_cast<std::size_t>(state.range(0));

  double secs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results =
        checker::check_batch(ct::IsolationLevel::kSerializable, histories, opts);
    benchmark::DoNotOptimize(results.data());
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kHistories * state.iterations()));
  record_scaling(state, "CheckBatch", secs / static_cast<double>(state.iterations()),
                 kHistories);
}
BENCHMARK(BM_CheckBatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Branch-parallel exhaustive refutation of one hard instance: the verdict
/// needs the whole pruned permutation tree, which the workers split by
/// top-level prefix branch.
void BM_ParallelExhaustiveScaling(benchmark::State& state) {
  const model::TransactionSet txns = unsat_instance(10);
  checker::CheckOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));

  double secs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        checker::check_exhaustive(ct::IsolationLevel::kSerializable, txns, opts)
            .outcome);
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  record_scaling(state, "ParallelExhaustive",
                 secs / static_cast<double>(state.iterations()), 1);
}
BENCHMARK(BM_ParallelExhaustiveScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// End-to-end store pipeline: run + verify many workloads through
/// run_verified_batch (runs and checks both fan out).
void BM_VerifiedBatchScaling(benchmark::State& state) {
  constexpr std::size_t kWorkloads = 32;
  static const std::vector<std::vector<store::TxnIntent>> workloads = [] {
    std::vector<std::vector<store::TxnIntent>> ws;
    ws.reserve(kWorkloads);
    for (std::size_t i = 0; i < kWorkloads; ++i) {
      ws.push_back(wl::generate_mix({.transactions = 24,
                                     .keys = 8,
                                     .reads_per_txn = 2,
                                     .writes_per_txn = 2,
                                     .seed = 100 + i}));
    }
    return ws;
  }();

  checker::CheckOptions copts;
  copts.threads = static_cast<std::size_t>(state.range(0));

  double secs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto verified = store::run_verified_batch(
        workloads,
        {.mode = store::CCMode::kSnapshotIsolation, .seed = 7, .concurrency = 4,
         .retries = 3},
        ct::IsolationLevel::kSerializable, copts);
    benchmark::DoNotOptimize(verified.data());
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kWorkloads * state.iterations()));
  record_scaling(state, "VerifiedBatch",
                 secs / static_cast<double>(state.iterations()), kWorkloads);
}
BENCHMARK(BM_VerifiedBatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Representation ablation: the same sequential exhaustive search on the
/// hashed (pre-compile, checker::reference) vs the compiled (interned,
/// flat-indexed) history representation. The workload is exhaustive-heavy —
/// half store-generated satisfiable histories, half write-skew refutations
/// whose whole pruned permutation tree must be exhausted — so per-node cost
/// dominates. Exported counters: histories_per_sec, ns_per_node (elapsed
/// over total branch-and-bound nodes), host_cpus, and, on the compiled run,
/// speedup_vs_hashed (the two variants share one process, so the baseline
/// is always measured in the same run). Export with
///   --benchmark_filter=Representation --benchmark_format=json
///     > BENCH_checker_compiled.json
void run_representation(benchmark::State& state, bool compiled) {
  constexpr std::size_t kHistories = 24;
  static const std::vector<model::TransactionSet> histories = batch_histories(kHistories);

  checker::CheckOptions opts;
  opts.exhaustive_threshold = 64;
  opts.threads = 1;

  double secs = 0;
  std::uint64_t total_nodes = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t nodes = 0;
    for (const model::TransactionSet& h : histories) {
      const checker::CheckResult r =
          compiled ? checker::check_exhaustive(ct::IsolationLevel::kSerializable, h, opts)
                   : checker::reference::check_exhaustive_hashed(
                         ct::IsolationLevel::kSerializable, h, opts);
      benchmark::DoNotOptimize(r.outcome);
      nodes += r.nodes_explored;
    }
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total_nodes += nodes;
  }
  const double secs_per_iter = secs / static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(kHistories * state.iterations()));
  state.counters["histories_per_sec"] = static_cast<double>(kHistories) / secs_per_iter;
  state.counters["ns_per_node"] = secs * 1e9 / static_cast<double>(total_nodes);
  state.counters["host_cpus"] = std::thread::hardware_concurrency();
  if (!compiled) {
    baselines()["Representation"] = secs_per_iter;
  } else if (baselines().count("Representation")) {
    state.counters["speedup_vs_hashed"] = baselines()["Representation"] / secs_per_iter;
  }
}

void BM_RepresentationHashed(benchmark::State& state) {
  run_representation(state, /*compiled=*/false);
}
BENCHMARK(BM_RepresentationHashed)->UseRealTime();

void BM_RepresentationCompiled(benchmark::State& state) {
  run_representation(state, /*compiled=*/true);
}
BENCHMARK(BM_RepresentationCompiled)->UseRealTime();

/// The raw per-op scan under the SoA layout: the flags-byte pass every engine
/// runs (fractured-read and CAUS-VIS sweeps touch only op_flags_[], one byte
/// per op; the wr-edge pass adds the writer array, four bytes). Exported
/// ops_per_sec tracks the layout's cache density directly, and
/// hot_bytes_per_op records the per-op hot-state footprint the SoA split
/// pays for a full key+writer+flags touch (9 bytes vs 16 for the old
/// array-of-structs CompiledOp).
void BM_RepresentationFlagsScan(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  const model::CompiledHistory ch(r.observations);
  std::uint64_t total_ops = 0;
  for (model::TxnIdx d = 0; d < ch.size(); ++d) total_ops += ch.op_count(d);
  for (auto _ : state) {
    std::uint64_t writes = 0, external = 0;
    for (model::TxnIdx d = 0; d < ch.size(); ++d) {
      const model::OpsView ops = ch.ops(d);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops.is_write(i)) {
          ++writes;
        } else if (ops.cls(i) == model::OpClass::kReadExternal) {
          external += ops.writer(i);
        }
      }
    }
    benchmark::DoNotOptimize(writes);
    benchmark::DoNotOptimize(external);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops) * state.iterations());
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["hot_bytes_per_op"] =
      sizeof(model::KeyIdx) + sizeof(model::TxnIdx) + sizeof(std::uint8_t);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RepresentationFlagsScan)->Arg(128)->Arg(512)->Arg(2048)->Complexity();

void BM_PrecedenceClosure(benchmark::State& state) {
  const store::RunResult r = run_of_size(static_cast<std::size_t>(state.range(0)));
  const model::Execution e =
      *checker::check(ct::IsolationLevel::kReadCommitted, r.observations).witness;
  for (auto _ : state) {
    const model::ReadStateAnalysis analysis(r.observations, e);
    benchmark::DoNotOptimize(analysis.precedence().direct_count(0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrecedenceClosure)->Arg(32)->Arg(128)->Arg(512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
