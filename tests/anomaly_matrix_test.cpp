// The anomaly × isolation-level matrix, decided end-to-end by the checker
// (Definition 5). Each classic anomaly separates adjacent levels of the
// hierarchy exactly where the paper says it should. Parameterized over
// every (scenario, level) pair; expected verdicts derived from §4–§5.
// The scenario table itself lives in engine_oracle.hpp, shared with the
// per-engine differential suites.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "engine_oracle.hpp"

namespace crooks::checker {
namespace {

using ct::IsolationLevel;
using oracle::Scenario;
using L = IsolationLevel;

class AnomalyMatrix : public ::testing::TestWithParam<Scenario> {};

TEST_P(AnomalyMatrix, CheckerMatchesExpectedVerdicts) {
  const Scenario& sc = GetParam();
  for (L level : oracle::all_levels()) {
    const bool expect_sat = sc.satisfiable.contains(level);
    const CheckResult r = check(level, sc.txns);
    ASSERT_NE(r.outcome, Outcome::kUnknown)
        << sc.name << " @ " << ct::name_of(level) << ": " << r.detail;
    EXPECT_EQ(r.satisfiable(), expect_sat)
        << sc.name << " @ " << ct::name_of(level) << ": " << r.detail;
    if (r.satisfiable()) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(verify_witness(level, sc.txns, *r.witness).ok);
    }
  }
}

TEST_P(AnomalyMatrix, ExhaustiveAgreesWithDispatch) {
  const Scenario& sc = GetParam();
  for (L level : oracle::all_levels()) {
    const CheckResult d = check(level, sc.txns);
    const CheckResult e = check_exhaustive(level, sc.txns);
    ASSERT_NE(e.outcome, Outcome::kUnknown);
    EXPECT_EQ(d.outcome, e.outcome) << sc.name << " @ " << ct::name_of(level);
  }
}

TEST_P(AnomalyMatrix, VerdictsMonotoneOverHierarchy) {
  const Scenario& sc = GetParam();
  for (L strong : oracle::all_levels()) {
    if (!sc.satisfiable.contains(strong)) continue;
    for (L weak : oracle::all_levels()) {
      if (ct::at_least_as_strong(strong, weak)) {
        EXPECT_TRUE(sc.satisfiable.contains(weak))
            << sc.name << ": " << ct::name_of(strong) << " sat implies "
            << ct::name_of(weak) << " sat (scenario table inconsistent)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Anomalies, AnomalyMatrix,
                         ::testing::ValuesIn(oracle::anomaly_scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace crooks::checker
