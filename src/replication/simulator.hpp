// Geo-replicated PSI simulator (§5.3, Figure 5).
//
// N sites commit transactions locally and replicate them asynchronously.
// Two dependency definitions are tracked side by side for every committed
// transaction:
//
//  * traditional PSI (Walter-style): each site totally orders its commits,
//    so a transaction implicitly depends on its origin site's entire
//    unreplicated log prefix — applying it remotely must wait for that
//    prefix (plus its observed cross-site dependencies);
//
//  * client-centric (the paper's D-PREC): only the dependencies an
//    application could actually observe — the writers its reads saw and the
//    previous writer of each key it overwrote.
//
// The simulator computes, per transaction, both dependency counts (Figure 5)
// and both remote-visibility times under the two apply disciplines, with an
// optional slow partition to reproduce the slowdown-cascade ablation: under
// the traditional discipline a delayed transaction head-of-line blocks every
// later transaction from its site; under the client-centric discipline only
// true dependents wait.
//
// This substitutes for the paper's TARDiS cluster measurement: the metric is
// a property of the dependency *definition*, not of TARDiS's engine, so a
// discrete-event simulation preserves the relevant behaviour (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "checker/checker.hpp"
#include "model/transaction.hpp"

namespace crooks::repl {

struct Slowdown {
  std::uint32_t partition = 0;      // key partition whose applies stall
  std::uint64_t from = 0;           // commit-time window of the stall
  std::uint64_t until = 0;
  std::uint64_t extra_delay = 0;    // added to remote apply availability
};

struct SimOptions {
  std::uint32_t sites = 3;
  std::size_t keys = 10'000;
  std::size_t transactions = 5'000;
  std::size_t reads_per_txn = 3;
  std::size_t writes_per_txn = 3;
  double zipf_theta = 0;
  std::uint64_t seed = 1;
  std::uint64_t replication_delay = 500;  // ticks from commit to availability
  std::uint32_t partitions = 10;          // key partitions (for slowdowns)
  /// Partition write ownership by site (reads stay global). This is the
  /// usual geo-replicated deployment and eliminates cross-site write-write
  /// conflicts, isolating the dependency metric from abort noise.
  bool site_local_writes = false;
  std::optional<Slowdown> slowdown;
};

struct TxnMetrics {
  TxnId id{};
  SiteId site{};
  std::uint64_t commit_time = 0;
  std::size_t traditional_deps = 0;  // unreplicated origin-log prefix
  std::size_t client_deps = 0;       // |D-PREC|: observed deps only
  std::uint64_t traditional_visible = 0;  // applied at every site (FIFO)
  std::uint64_t client_visible = 0;       // applied at every site (dep-driven)
  bool touches_slow_partition = false;
};

struct SimResult {
  std::vector<TxnMetrics> txns;
  std::size_t committed = 0;
  std::size_t ww_aborts = 0;  // PSI first-committer-wins casualties

  /// Client observations + version order of the committed transactions, so
  /// the checker can audit the simulated system (it must satisfy CT_PSI).
  model::TransactionSet observations;
  std::unordered_map<Key, std::vector<TxnId>> version_order;

  double mean_traditional_deps() const;
  double mean_client_deps() const;
  /// Mean visibility latency (commit → applied everywhere) of transactions
  /// NOT touching the slow partition — the slowdown-cascade metric.
  double mean_unrelated_latency(bool traditional) const;
};

SimResult simulate(const SimOptions& options);

}  // namespace crooks::repl
