file(REMOVE_RECURSE
  "CMakeFiles/geo_store_test.dir/geo_store_test.cpp.o"
  "CMakeFiles/geo_store_test.dir/geo_store_test.cpp.o.d"
  "geo_store_test"
  "geo_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
