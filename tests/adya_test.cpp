// Adya baseline: history construction, DSG edges, phenomena detection, and
// the history↔observation bridges.
#include <gtest/gtest.h>

#include "adya/graph.hpp"
#include "adya/history.hpp"
#include "adya/phenomena.hpp"

namespace crooks::adya {
namespace {

using ct::IsolationLevel;

constexpr Key kX{0}, kY{1};

TEST(History, BuilderDerivesVersionOrderFromCommitOrder) {
  History h = HistoryBuilder()
                  .begin(TxnId{1}, 0).write(1, 0).commit(TxnId{1}, 10)
                  .begin(TxnId{2}, 5).write(2, 0).commit(TxnId{2}, 20)
                  .build();
  const auto& order = h.installers(kX);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], TxnId{1});
  EXPECT_EQ(order[1], TxnId{2});
}

TEST(History, ExplicitOrderOverrides) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).commit(1)
                  .begin(2).write(2, 0).commit(2)
                  .order(kX, {TxnId{2}, TxnId{1}})
                  .build();
  EXPECT_EQ(h.installers(kX).front(), TxnId{2});
}

TEST(History, AbortedTransactionsExcludedFromVersionOrder) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).abort(1)
                  .begin(2).write(2, 0).commit(2)
                  .build();
  ASSERT_EQ(h.installers(kX).size(), 1u);
  EXPECT_EQ(h.installers(kX)[0], TxnId{2});
  EXPECT_FALSE(h.by_id(TxnId{1}).committed);
}

TEST(History, RejectsIncompleteVersionOrder) {
  std::vector<HistTxn> txns(1);
  txns[0].id = TxnId{1};
  txns[0].committed = true;
  txns[0].events.push_back({EventType::kWrite, kX, Version{TxnId{1}, 1}});
  EXPECT_THROW(History(std::move(txns), {}), std::invalid_argument);
}

TEST(History, FinalWriteSeq) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).write(1, 0).write(1, 1).commit(1)
                  .build();
  EXPECT_EQ(h.by_id(TxnId{1}).final_write_seq(kX), 2u);
  EXPECT_EQ(h.by_id(TxnId{1}).final_write_seq(kY), 1u);
  EXPECT_FALSE(h.by_id(TxnId{1}).final_write_seq(Key{9}).has_value());
}

TEST(Dsg, EdgesOfASimpleChain) {
  // T1 writes x; T2 reads x and writes x.
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).commit(1, 10)
                  .begin(2).read(2, 0, 1).write(2, 0).commit(2, 20)
                  .build();
  Dsg g(h);
  ASSERT_EQ(g.size(), 2u);
  bool saw_ww = false, saw_wr = false;
  for (const Edge& e : g.edges()) {
    if (e.kind == kWW) {
      saw_ww = true;
      EXPECT_EQ(g.id_of(e.from), TxnId{1});
      EXPECT_EQ(g.id_of(e.to), TxnId{2});
    }
    if (e.kind == kWR) saw_wr = true;
    EXPECT_NE(e.kind, kRW);  // T2 reads the version it itself replaces
  }
  EXPECT_TRUE(saw_ww);
  EXPECT_TRUE(saw_wr);
}

TEST(Dsg, AntiDependencyFromStaleRead) {
  // T1 reads ⊥ for x; T2 installs x: T1 --rw--> T2.
  History h = HistoryBuilder()
                  .begin(1).read(1, 0, 0).commit(1, 10)
                  .begin(2).write(2, 0).commit(2, 20)
                  .build();
  Dsg g(h);
  bool saw_rw = false;
  for (const Edge& e : g.edges()) {
    if (e.kind == kRW) {
      saw_rw = true;
      EXPECT_EQ(g.id_of(e.from), TxnId{1});
      EXPECT_EQ(g.id_of(e.to), TxnId{2});
    }
  }
  EXPECT_TRUE(saw_rw);
}

TEST(Dsg, CycleDetectionByMask) {
  // ww cycle via two keys with opposing version orders.
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).write(1, 1).commit(1)
                  .begin(2).write(2, 0).write(2, 1).commit(2)
                  .order(kX, {TxnId{1}, TxnId{2}})
                  .order(kY, {TxnId{2}, TxnId{1}})
                  .build();
  Dsg g(h);
  EXPECT_TRUE(g.has_cycle(kWW));
  EXPECT_FALSE(g.find_cycle(kWW).empty());
  EXPECT_FALSE(g.has_cycle(kWR));
}

TEST(Phenomena, G1aDirtyRead) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).abort(1)
                  .begin(2).read(2, 0, 1).commit(2)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.g1a);
  EXPECT_FALSE(p.g1b);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadCommitted), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadUncommitted), Verdict::kSatisfied);
}

TEST(Phenomena, G1bIntermediateRead) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).write(1, 0).commit(1, 10)
                  .begin(2).read(TxnId{2}, kX, Version{TxnId{1}, 1}).commit(2, 20)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.g1b);
  EXPECT_FALSE(p.g1a);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadCommitted), Verdict::kViolated);
}

TEST(Phenomena, G1cCircularInformationFlow) {
  // T1 reads T2's y; T2 reads T1's x: wr cycle.
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).read(1, 1, 2).commit(1, 10)
                  .begin(2).write(2, 1).read(2, 0, 1).commit(2, 20)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.g1c);
  EXPECT_FALSE(p.g0);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadCommitted), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadUncommitted), Verdict::kSatisfied);
}

TEST(Phenomena, WriteSkewIsG2NotGSingle) {
  History h = HistoryBuilder()
                  .begin(1, 0).read(1, 0, 0).read(1, 1, 0).write(1, 0).commit(1, 10)
                  .begin(2, 1).read(2, 0, 0).read(2, 1, 0).write(2, 1).commit(2, 11)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.g2);
  EXPECT_FALSE(p.g_single);  // the only cycle has two anti-dependency edges
  EXPECT_FALSE(p.g1());
  EXPECT_EQ(satisfies(p, IsolationLevel::kSerializable), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kPSI), Verdict::kSatisfied);
  ASSERT_TRUE(p.g_si_a.has_value());
  EXPECT_FALSE(*p.g_si_a);
  EXPECT_FALSE(*p.g_si_b);
  EXPECT_EQ(satisfies(p, IsolationLevel::kAnsiSI), Verdict::kSatisfied);
}

TEST(Phenomena, LostUpdateIsGSingle) {
  // Both read x=⊥ and write x: T2 --rw--> T1? No — T2's stale read
  // anti-depends on the *first* installer T1, and T1 --ww--> T2 closes a
  // cycle with exactly one anti-dependency edge.
  History h = HistoryBuilder()
                  .begin(1, 0).read(1, 0, 0).write(1, 0).commit(1, 10)
                  .begin(2, 1).read(2, 0, 0).write(2, 0).commit(2, 11)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.g_single);
  EXPECT_TRUE(p.g2);
  EXPECT_EQ(satisfies(p, IsolationLevel::kPSI), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kAnsiSI), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadCommitted), Verdict::kSatisfied);
}

TEST(Phenomena, FracturedRead) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).write(1, 1).commit(1, 10)
                  .begin(2).read(2, 0, 1).read(2, 1, 0).commit(2, 20)
                  .build();
  const Phenomena p = detect(h);
  EXPECT_TRUE(p.fractured);
  EXPECT_FALSE(p.g1());
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadAtomic), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kReadCommitted), Verdict::kSatisfied);
}

TEST(Phenomena, RealTimeCycleForStrictSer) {
  // T1 reads T2's write although T2 starts after T1 commits: wr edge T2→T1
  // plus real-time edge T1→T2 form a cycle. (This history is G1-free only
  // in the Adya sense if the read is of an installed version — it is.)
  History h = HistoryBuilder()
                  .begin(1, 0).read(1, 0, 2).commit(1, 10)
                  .begin(2, 20).write(2, 0).commit(2, 30)
                  .build();
  const Phenomena p = detect(h);
  ASSERT_TRUE(p.rt_cycle.has_value());
  EXPECT_TRUE(*p.rt_cycle);
  EXPECT_EQ(satisfies(p, IsolationLevel::kStrictSerializable), Verdict::kViolated);
  EXPECT_EQ(satisfies(p, IsolationLevel::kSerializable), Verdict::kSatisfied);
}

TEST(Phenomena, TimestamplessHistoriesMakeTimedLevelsInapplicable) {
  History h = HistoryBuilder().begin(1).write(1, 0).commit(1).build();
  const Phenomena p = detect(h);
  EXPECT_FALSE(p.g_si_a.has_value());
  EXPECT_EQ(satisfies(p, IsolationLevel::kAdyaSI), Verdict::kInapplicable);
  EXPECT_EQ(satisfies(p, IsolationLevel::kStrictSerializable), Verdict::kInapplicable);
  EXPECT_EQ(satisfies(p, IsolationLevel::kSessionSI), Verdict::kInapplicable);
}

TEST(Explain, NamesPhenomenonAndCycle) {
  // Lost update: G-Single cycle T2 -rw-> T1 -ww-> T2.
  History h = HistoryBuilder()
                  .begin(1, 0).read(1, 0, 0).write(1, 0).commit(1, 10)
                  .begin(2, 1).read(2, 0, 0).write(2, 0).commit(2, 11)
                  .build();
  const std::string psi = explain_violation(h, IsolationLevel::kPSI);
  EXPECT_NE(psi.find("G-Single"), std::string::npos) << psi;
  EXPECT_NE(psi.find("T1"), std::string::npos);
  EXPECT_NE(psi.find("T2"), std::string::npos);
  const std::string ser = explain_violation(h, IsolationLevel::kSerializable);
  EXPECT_NE(ser.find("G2"), std::string::npos) << ser;
  // Satisfied levels yield an empty explanation.
  EXPECT_TRUE(explain_violation(h, IsolationLevel::kReadCommitted).empty());
}

TEST(Explain, DirtyAndIntermediateReads) {
  History dirty = HistoryBuilder()
                      .begin(1).write(1, 0).abort(1)
                      .begin(2).read(2, 0, 1).commit(2)
                      .build();
  EXPECT_NE(explain_violation(dirty, IsolationLevel::kReadCommitted).find("G1a"),
            std::string::npos);

  History mid = HistoryBuilder()
                    .begin(1).write(1, 0).write(1, 0).commit(1, 10)
                    .begin(2).read(TxnId{2}, kX, Version{TxnId{1}, 1}).commit(2, 20)
                    .build();
  EXPECT_NE(explain_violation(mid, IsolationLevel::kSerializable).find("G1b"),
            std::string::npos);
}

TEST(Dsg, FindCycleWithExactlyOneAntiDependency) {
  History h = HistoryBuilder()
                  .begin(1, 0).read(1, 0, 0).write(1, 0).commit(1, 10)
                  .begin(2, 1).read(2, 0, 0).write(2, 0).commit(2, 11)
                  .build();
  Dsg g(h);
  const std::vector<TxnId> cycle = g.find_cycle_with_exactly_one(kRW, kDependency);
  ASSERT_EQ(cycle.size(), 2u);
  // The rw edge T2 -rw-> T1 leads; T1 -ww-> T2 closes.
  EXPECT_EQ(cycle[0], TxnId{2});
  EXPECT_EQ(cycle[1], TxnId{1});
  // No such cycle among dependencies alone.
  EXPECT_TRUE(g.find_cycle_with_exactly_one(kWR, kWR).empty());
}

TEST(Observations, RoundTripCommittedReadsWrites) {
  History h = HistoryBuilder()
                  .begin(1, 0).write(1, 0).commit(1, 10)
                  .begin(2, 11).read(2, 0, 1).write(2, 1).commit(2, 20)
                  .build();
  model::TransactionSet obs = to_observations(h);
  ASSERT_EQ(obs.size(), 2u);
  const model::Transaction& t2 = obs.by_id(TxnId{2});
  ASSERT_EQ(t2.ops().size(), 2u);
  EXPECT_TRUE(t2.ops()[0].is_read());
  EXPECT_EQ(t2.ops()[0].value.writer, TxnId{1});
  EXPECT_EQ(t2.start_ts(), 11);
  EXPECT_EQ(t2.commit_ts(), 20);
}

TEST(Observations, IntermediateWritesCollapseAndPhantomReads) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).write(1, 0).commit(1, 10)
                  .begin(2).read(TxnId{2}, kX, Version{TxnId{1}, 1}).commit(2, 20)
                  .build();
  model::TransactionSet obs = to_observations(h);
  EXPECT_EQ(obs.by_id(TxnId{1}).ops().size(), 1u);  // one final write
  const model::Operation& read = obs.by_id(TxnId{2}).ops()[0];
  EXPECT_TRUE(read.value.phantom);
}

TEST(Observations, AbortedReadsKeepDanglingWriter) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).abort(1)
                  .begin(2).read(2, 0, 1).commit(2)
                  .build();
  model::TransactionSet obs = to_observations(h);
  EXPECT_EQ(obs.size(), 1u);
  EXPECT_FALSE(obs.contains(TxnId{1}));
  EXPECT_EQ(obs.by_id(TxnId{2}).ops()[0].value.writer, TxnId{1});
}

TEST(Observations, OwnReadsDropped) {
  History h = HistoryBuilder()
                  .begin(1).write(1, 0).read(1, 0, 1).commit(1)
                  .build();
  model::TransactionSet obs = to_observations(h);
  ASSERT_EQ(obs.by_id(TxnId{1}).ops().size(), 1u);
  EXPECT_TRUE(obs.by_id(TxnId{1}).ops()[0].is_write());
}

TEST(Observations, FromObservationsInvertsToObservations) {
  History h = HistoryBuilder()
                  .begin(1, 0).write(1, 0).commit(1, 10)
                  .begin(2, 12).read(2, 0, 1).write(2, 0).commit(2, 20)
                  .build();
  model::TransactionSet obs = to_observations(h);
  History h2 = from_observations(obs, h.version_order());
  const Phenomena p1 = detect(h);
  const Phenomena p2 = detect(h2);
  for (IsolationLevel l : ct::kAllLevels) {
    EXPECT_EQ(satisfies(p1, l), satisfies(p2, l)) << ct::name_of(l);
  }
}

TEST(Observations, FromObservationsRejectsAmbiguousMultiWriterKeys) {
  model::TransactionSet obs{{model::TxnBuilder(1).write(0).build(),
                             model::TxnBuilder(2).write(0).build()}};
  EXPECT_THROW(from_observations(obs, {}), std::invalid_argument);
}

TEST(Observations, FromObservationsPhantomBecomesG1b) {
  model::TransactionSet obs{
      {model::TxnBuilder(1).write(0).build(),
       model::TxnBuilder(2).read_intermediate(Key{0}, TxnId{1}).build()}};
  History h = from_observations(obs, {});
  EXPECT_TRUE(detect(h).g1b);
}

TEST(Observations, FromObservationsDanglingWriterBecomesG1a) {
  model::TransactionSet obs{{model::TxnBuilder(2).read(0, 77).build()}};
  History h = from_observations(obs, {});
  EXPECT_TRUE(detect(h).g1a);
}

}  // namespace
}  // namespace crooks::adya
