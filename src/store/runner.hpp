// Deterministic concurrent workload runner.
//
// Drives a Store through a seeded random interleaving of transaction
// intents, with optional failure injection (spontaneous aborts) and
// bounded retries. The runner is the bridge from workloads to histories:
// every experiment that needs "a run of the store at isolation level X"
// goes through here, and identical (intents, options) pairs produce
// identical histories bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checker/checker.hpp"
#include "store/store.hpp"

namespace crooks::store {

/// What a transaction intends to do; the store decides what its reads see.
struct TxnIntent {
  struct Step {
    bool is_read = true;
    Key key{};
  };
  std::vector<Step> steps;
  SessionId session = kNoSession;
  SiteId site{0};
  /// Declared isolation level, carried into the run's observations as the
  /// `level=` annotation (mixed-level audits read it; global-level audits
  /// ignore it).
  std::optional<ct::IsolationLevel> level;

  TxnIntent& read(Key k) {
    steps.push_back({true, k});
    return *this;
  }
  TxnIntent& read(std::uint64_t k) { return read(Key{k}); }
  TxnIntent& write(Key k) {
    steps.push_back({false, k});
    return *this;
  }
  TxnIntent& write(std::uint64_t k) { return write(Key{k}); }
  TxnIntent& at(ct::IsolationLevel l) {
    level = l;
    return *this;
  }
};

struct RunOptions {
  CCMode mode = CCMode::kSnapshotIsolation;
  std::uint64_t seed = 1;
  std::size_t concurrency = 4;     // max in-flight transactions (Serial forces 1)
  double injected_abort_prob = 0;  // per-step probability of a crash-abort
  int retries = 0;                 // re-run aborted intents (fresh txn id)
};

struct RunResult {
  adya::History history;
  model::TransactionSet observations;
  std::unordered_map<Key, std::vector<TxnId>> version_order;
  std::size_t committed = 0;
  std::size_t aborted = 0;        // counts every abort, including retried ones
  std::size_t blocked_steps = 0;  // lock waits observed (2PL)
};

RunResult run(const std::vector<TxnIntent>& intents, const RunOptions& options);

/// One workload's run plus its isolation verdict from the batch checker.
struct VerifiedRun {
  RunResult run;
  checker::CheckResult verdict;
};

/// Run every workload (workload i uses seed base.seed + i, other options
/// shared) and verify each run's observations at `level` in one
/// checker::check_batch call, restricted by that run's own authoritative
/// version order. Both the runs and the checks fan out across
/// copts.threads pool workers; results are in input order and every run is
/// bit-for-bit the run(intents, options) result for its seed.
std::vector<VerifiedRun> run_verified_batch(
    const std::vector<std::vector<TxnIntent>>& workloads, const RunOptions& base,
    ct::IsolationLevel level, const checker::CheckOptions& copts = {});

/// Mixed-level variant: each run is audited under `policy` — by default every
/// transaction at its own declared level (TxnIntent::level / the `level=`
/// annotation), unannotated ones at policy.fallback. A trivially uniform
/// policy reproduces the global-level overload exactly.
std::vector<VerifiedRun> run_verified_batch(
    const std::vector<std::vector<TxnIntent>>& workloads, const RunOptions& base,
    const ct::LevelPolicy& policy, const checker::CheckOptions& copts = {});

}  // namespace crooks::store
