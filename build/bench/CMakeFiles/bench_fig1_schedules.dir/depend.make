# Empty dependencies file for bench_fig1_schedules.
# This may be replaced when dependencies are built.
