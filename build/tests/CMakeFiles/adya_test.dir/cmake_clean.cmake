file(REMOVE_RECURSE
  "CMakeFiles/adya_test.dir/adya_test.cpp.o"
  "CMakeFiles/adya_test.dir/adya_test.cpp.o.d"
  "adya_test"
  "adya_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
