// Figure 4: the isolation hierarchy, measured.
//
// Over many seeded store runs per CC mode, count how often each level's
// commit test is satisfied. Two properties reproduce the figure:
//   1. containment — the pass-set of a stronger level is a subset of every
//      weaker level's pass-set, on every single run (checked, not sampled);
//   2. separation — adjacent levels differ on some runs (the fractions
//      printed below strictly decrease up the hierarchy for weak modes).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "checker/checker.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

constexpr std::size_t kSeeds = 40;

void print_table() {
  const store::CCMode modes[] = {
      store::CCMode::kSnapshotIsolation,
      store::CCMode::kReadAtomic,
      store::CCMode::kReadCommitted,
      store::CCMode::kReadUncommitted,
  };
  std::printf("Figure 4 (empirical): fraction of %zu runs satisfying each level\n\n",
              kSeeds);
  std::printf("%-20s", "level \\ mode");
  for (store::CCMode m : modes) std::printf(" %10.10s", std::string(store::name_of(m)).c_str());
  std::printf("\n");

  std::map<store::CCMode, std::map<ct::IsolationLevel, std::size_t>> passes;
  std::size_t containment_violations = 0;

  for (store::CCMode m : modes) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto intents = wl::generate_mix({.transactions = 30,
                                             .keys = 6,
                                             .reads_per_txn = 2,
                                             .writes_per_txn = 2,
                                             .seed = seed});
      const store::RunResult r = store::run(
          intents, {.mode = m, .seed = seed + 7, .concurrency = 6,
                    .injected_abort_prob = 0.05});
      checker::CheckOptions opts;
      opts.version_order = &r.version_order;
      std::map<ct::IsolationLevel, bool> verdict;
      for (ct::IsolationLevel level : ct::kAllLevels) {
        const checker::CheckResult res = checker::check(level, r.observations, opts);
        verdict[level] = res.satisfiable();
        if (res.satisfiable()) ++passes[m][level];
      }
      for (ct::IsolationLevel a : ct::kAllLevels) {
        for (ct::IsolationLevel b : ct::kAllLevels) {
          if (verdict[a] && ct::at_least_as_strong(a, b) && !verdict[b]) {
            ++containment_violations;
          }
        }
      }
    }
  }

  for (ct::IsolationLevel level : ct::kAllLevels) {
    std::printf("%-20s", std::string(ct::name_of(level)).c_str());
    for (store::CCMode m : modes) {
      std::printf(" %9.0f%%", 100.0 * static_cast<double>(passes[m][level]) /
                                  static_cast<double>(kSeeds));
    }
    std::printf("\n");
  }
  std::printf("\ncontainment violations across all runs and level pairs: %zu "
              "(must be 0)\n\n",
              containment_violations);
}

void BM_HierarchySweep(benchmark::State& state) {
  const auto intents = wl::generate_mix({.transactions = 30,
                                         .keys = 6,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = 3});
  const store::RunResult r = store::run(
      intents, {.mode = store::CCMode::kReadCommitted, .seed = 11, .concurrency = 6});
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  for (auto _ : state) {
    for (ct::IsolationLevel level : ct::kAllLevels) {
      benchmark::DoNotOptimize(checker::check(level, r.observations, opts).outcome);
    }
  }
}
BENCHMARK(BM_HierarchySweep);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
