#include "model/analysis.hpp"

#include <algorithm>
#include <cassert>

namespace crooks::model {

namespace {

// Shared empty timeline (just the initial ⊥ version) for keys never written.
const std::vector<VersionEntry>& initial_only_timeline() {
  static const std::vector<VersionEntry> kInitial{{0, kInitTxn, kNoTxnIdx}};
  return kInitial;
}

}  // namespace

ReadStateAnalysis::ReadStateAnalysis(const TransactionSet& txns, const Execution& e)
    : owned_(std::make_unique<CompiledHistory>(txns)), ch_(owned_.get()), exec_(&e) {
  init();
}

ReadStateAnalysis::ReadStateAnalysis(const CompiledHistory& ch, const Execution& e)
    : ch_(&ch), exec_(&e) {
  init();
}

void ReadStateAnalysis::init() {
  txn_.resize(ch_->size());

  // Build per-key version timelines by walking the execution order once.
  timelines_.assign(ch_->key_count(), {{0, kInitTxn, kNoTxnIdx}});
  for (std::size_t j = 0; j < exec_->size(); ++j) {
    const TxnIdx d = exec_->dense_at(j);
    const StateIndex pos = static_cast<StateIndex>(j) + 1;
    for (KeyIdx k : ch_->write_keys(d)) {
      timelines_[k].push_back({pos, ch_->id_of(d), d});
    }
  }

  for (std::size_t dense = 0; dense < ch_->size(); ++dense) {
    analyze_transaction(dense);
    if (!txn_[dense].preread) preread_all_ = false;
  }
}

const std::vector<VersionEntry>& ReadStateAnalysis::timeline(Key k) const {
  const KeyIdx ki = ch_->keys().find(k);
  return ki == kNoKeyIdx ? initial_only_timeline() : timelines_[ki];
}

StateIndex ReadStateAnalysis::last_write_at_or_before_idx(KeyIdx k, StateIndex s) const {
  const std::vector<VersionEntry>& tl = timelines_[k];
  // Last entry with pos <= s. Entry 0 always has pos == 0 <= s for s >= 0.
  auto it = std::upper_bound(tl.begin(), tl.end(), s,
                             [](StateIndex v, const VersionEntry& en) { return v < en.pos; });
  assert(it != tl.begin());
  return std::prev(it)->pos;
}

StateIndex ReadStateAnalysis::last_write_at_or_before(Key k, StateIndex s) const {
  const KeyIdx ki = ch_->keys().find(k);
  return ki == kNoKeyIdx ? 0 : last_write_at_or_before_idx(ki, s);
}

StateInterval ReadStateAnalysis::read_states_of(std::size_t dense,
                                                const CompiledOp& op) const {
  const StateIndex parent = exec_->parent_of(dense);

  StateIndex version_pos = 0;
  switch (op.cls) {
    case OpClass::kWrite:
    case OpClass::kReadInternal:
      // Writes (by the §3 convention) and reads of the transaction's own
      // earlier write can "read" from any state up to the parent.
      return {0, parent};
    case OpClass::kReadNever:
      // Phantom, malformed internal, self-external, unknown writer, or the
      // writer never wrote this key: no state exhibits the observation.
      return {};
    case OpClass::kReadInitial:
      version_pos = 0;
      break;
    case OpClass::kReadExternal:
      version_pos = exec_->state_of(op.writer);
      break;
  }

  // The version is current from version_pos until the next write of the key.
  const std::vector<VersionEntry>& tl = timelines_[op.key];
  auto it = std::upper_bound(tl.begin(), tl.end(), version_pos,
                             [](StateIndex v, const VersionEntry& en) { return v < en.pos; });
  const StateIndex next_write =
      it == tl.end() ? exec_->last_state() + 1 : it->pos;

  // Clamp to the parent: operations cannot read from the future (§3).
  return StateInterval{version_pos, std::min(next_write - 1, parent)};
}

void ReadStateAnalysis::analyze_transaction(std::size_t dense) {
  const OpsView cops = ch_->ops(static_cast<TxnIdx>(dense));
  TxnAnalysis& out = txn_[dense];
  out.state = exec_->state_of(dense);
  out.parent = out.state - 1;
  out.preread = true;
  out.complete = {0, out.parent};
  out.ops.resize(cops.size());

  for (std::size_t i = 0; i < cops.size(); ++i) {
    const CompiledOp op = cops[i];  // gather once; this is a cold path
    const StateInterval rs = read_states_of(dense, op);
    out.ops[i] = {rs, op.internal()};
    if (rs.empty()) out.preread = false;
    out.complete = out.complete.intersect(rs);
  }

  // NO-CONF_T(s) ≡ Δ(s, s_p) ∩ W_T = ∅. Δ(s, s_p) is exactly the set of keys
  // written by transactions at positions in (s, s_p] (values are unique, so a
  // key differs iff someone rewrote it). The earliest conflict-free state is
  // therefore the last position ≤ s_p at which any key of W_T was written.
  StateIndex min_ok = 0;
  for (KeyIdx k : ch_->write_keys(static_cast<TxnIdx>(dense))) {
    min_ok = std::max(min_ok, last_write_at_or_before_idx(k, out.parent));
  }
  out.no_conf_min = min_ok;
}

const Precedence& ReadStateAnalysis::precedence() const {
  if (precedence_.has_value()) return *precedence_;

  Precedence p;
  const std::size_t n = ch_->size();
  p.prec_.assign(n, DynamicBitset(n));
  p.direct_count_.assign(n, 0);

  // Walk transactions in execution order so that every direct predecessor's
  // transitive set is already complete when we fold it in (Lemma E.1/E.2:
  // under PREREAD, predecessors occur strictly earlier in e).
  for (std::size_t j = 0; j < exec_->size(); ++j) {
    const TxnIdx dense = exec_->dense_at(j);
    const OpsView cops = ch_->ops(dense);
    const TxnAnalysis& ta = txn_[dense];
    DynamicBitset& mine = p.prec_[dense];
    DynamicBitset direct_set(n);  // D-PREC_e(T): distinct direct predecessors

    auto add_direct = [&](std::size_t pred_dense) {
      if (pred_dense == dense) return;
      direct_set.set(pred_dense);
      mine.set(pred_dense);
      mine.or_with(p.prec_[pred_dense]);
    };

    // Read dependencies: the writer of each operation's first read state.
    // Only external reads of a member writer contribute (internal reads and
    // reads of ⊥ have no writer; empty-RS reads contribute no edges).
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (cops.cls(i) != OpClass::kReadExternal || ta.ops[i].rs.empty()) continue;
      add_direct(cops.writer(i));
    }

    // Write-write dependencies: every earlier transaction writing a key that
    // this transaction also writes.
    for (KeyIdx k : ch_->write_keys(dense)) {
      for_writers_in_idx(k, 0, ta.parent, [&](const VersionEntry& v) {
        if (v.writer_dense == kNoTxnIdx) return;  // the initial ⊥ version
        add_direct(v.writer_dense);
      });
    }

    p.direct_count_[dense] = direct_set.count();
  }

  precedence_ = std::move(p);
  return *precedence_;
}

}  // namespace crooks::model
