// Canonical labeled-graph fingerprints for violation witnesses.
//
// Two refutations of the same anomaly on different transactions must land in
// the same pattern bucket. The witness subgraph (nodes = implicated
// transactions tagged by role, edges = Adya dependency kinds) is therefore
// reduced to a CANONICAL form: a relabeling of the nodes that minimizes the
// serialized (roles, edges) code over every automorphism-respecting
// permutation — the same idea as gSpan's minimum DFS code, specialized to
// the tiny graphs a witness produces (≤ kMaxNodes). Isomorphic shapes get
// byte-identical canonical codes, so one FNV-1a hash of the code is a stable
// pattern fingerprint across runs, thread counts, and offline/streaming
// replays.
//
// The search is exact for witness-sized graphs: a Weisfeiler-Leman color
// refinement partitions the nodes, and only permutations that respect the
// partition are enumerated (bounded by kMaxPermutations; beyond that a
// deterministic refinement-ordered labeling is used, which can split — never
// merge — isomorphism classes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crooks::forensics {

/// Node roles: the only node labels canonicalization distinguishes.
inline constexpr std::uint8_t kRoleFailing = 0;  // the txn whose commit test fails
inline constexpr std::uint8_t kRoleInit = 1;     // the synthetic ⊥ installer
inline constexpr std::uint8_t kRoleOther = 2;    // any other implicated txn

/// One labeled edge; `kind` is an adya::EdgeKind bit (kWW/kWR/kRW/kSD/kRT).
struct ShapeEdge {
  std::uint8_t from = 0;
  std::uint8_t to = 0;
  std::uint8_t kind = 0;

  friend constexpr auto operator<=>(const ShapeEdge&, const ShapeEdge&) = default;
};

/// The labeled multigraph of a witness: node i carries roles[i]; edges are
/// kept sorted and deduplicated (normalize()).
struct ShapeGraph {
  std::vector<std::uint8_t> roles;
  std::vector<ShapeEdge> edges;

  std::size_t size() const { return roles.size(); }
  /// Sort + dedup edges, drop self-loops and out-of-range endpoints.
  void normalize();

  friend bool operator==(const ShapeGraph&, const ShapeGraph&) = default;
};

/// Largest witness graph canonicalized; extraction truncates beyond this.
inline constexpr std::size_t kMaxNodes = 12;
/// Permutation budget for the exact canonical search.
inline constexpr std::size_t kMaxPermutations = 40320;  // 8!

/// The canonical relabeling of `g`: node order minimizes the serialized
/// (roles, sorted edges) code over all refinement-class-respecting
/// permutations. Deterministic for every input; exact (isomorphism-complete)
/// whenever the class-respecting permutation count is ≤ kMaxPermutations.
ShapeGraph canonical_form(const ShapeGraph& g);

/// Serialized canonical code of `g` (caller passes the canonical_form
/// result). Byte-stable: this is what gets hashed and compared.
std::string canonical_code(const ShapeGraph& g);

/// Human-readable rendering of a (canonical) shape, e.g.
/// "T1 -wr-> F, F -rw-> T1" with F/I/Tk names by role.
std::string shape_string(const ShapeGraph& g);

/// FNV-1a 64-bit over `bytes`, continuing from `seed` (pass kFnvBasis to
/// start a fresh hash).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
std::uint64_t fnv1a(std::uint64_t seed, std::string_view bytes);

/// All weakly-connected edge-subset subgraphs of `g` with 1..max_edges
/// edges, each in canonical form and deduplicated by canonical code. Node
/// set = endpoints of the chosen edges (roles preserved). The frequent-
/// subgraph miner counts these across witnesses.
std::vector<ShapeGraph> enumerate_subshapes(const ShapeGraph& g,
                                            std::size_t max_edges);

/// Name of a 2-cycle anomaly shape when the canonical graph contains one
/// (checked in a fixed priority order), empty otherwise:
///   rw+rw → "write-skew", wr+rw → "read-skew", ww+rw → "lost-update",
///   sd+rw → "stale-snapshot-read", rt+rw → "stale-read",
///   wr+wr → "circular-information-flow", ww+ww → "circular-write-order".
std::string known_cycle_name(const ShapeGraph& g);

}  // namespace crooks::forensics
