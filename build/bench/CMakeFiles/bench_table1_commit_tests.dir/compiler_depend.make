# Empty compiler generated dependencies file for bench_table1_commit_tests.
# This may be replaced when dependencies are built.
