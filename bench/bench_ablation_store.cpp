// Ablation: store concurrency-control modes under varying contention.
//
// Throughput (transactions processed per second of wall time) and abort
// rates per mode, across key-space sizes (contention) and Zipf skew. The
// usual trade-off surfaces: weaker isolation commits more under contention;
// SI pays first-committer-wins aborts; 2PL pays wait-die aborts and lock
// waits.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

void print_abort_table() {
  const store::CCMode modes[] = {
      store::CCMode::kTwoPhaseLocking, store::CCMode::kWoundWait,
      store::CCMode::kSnapshotIsolation, store::CCMode::kReadAtomic,
      store::CCMode::kReadCommitted,
  };
  std::printf("Abort rates (500 txns, 2r+2w, concurrency 8, 3 retries):\n\n");
  std::printf("%-20s %12s %12s %12s\n", "mode", "keys=8", "keys=64", "zipf .9/64");
  for (store::CCMode m : modes) {
    std::printf("%-20s", std::string(store::name_of(m)).c_str());
    for (int config = 0; config < 3; ++config) {
      wl::MixOptions mix{.transactions = 500,
                         .keys = config == 0 ? 8u : 64u,
                         .reads_per_txn = 2,
                         .writes_per_txn = 2,
                         .seed = 7};
      if (config == 2) mix.zipf_theta = 0.9;
      const auto intents = wl::generate_mix(mix);
      const store::RunResult r = store::run(
          intents, {.mode = m, .seed = 3, .concurrency = 8, .retries = 3});
      std::printf(" %11.1f%%", 100.0 * static_cast<double>(r.aborted) /
                                   static_cast<double>(r.aborted + r.committed));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_StoreRun(benchmark::State& state) {
  const auto mode = static_cast<store::CCMode>(state.range(0));
  const auto keys = static_cast<std::size_t>(state.range(1));
  const auto intents = wl::generate_mix({.transactions = 500,
                                         .keys = keys,
                                         .reads_per_txn = 2,
                                         .writes_per_txn = 2,
                                         .seed = 7});
  std::size_t committed = 0;
  for (auto _ : state) {
    const store::RunResult r = store::run(
        intents, {.mode = mode, .seed = 3, .concurrency = 8, .retries = 3});
    committed += r.committed;
    benchmark::DoNotOptimize(r.committed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 500);
  state.SetLabel(std::string(store::name_of(mode)) + "/keys=" + std::to_string(keys));
}

}  // namespace

int main(int argc, char** argv) {
  print_abort_table();
  for (store::CCMode m :
       {store::CCMode::kSerial, store::CCMode::kTwoPhaseLocking,
        store::CCMode::kWoundWait, store::CCMode::kSnapshotIsolation,
        store::CCMode::kReadAtomic, store::CCMode::kReadCommitted,
        store::CCMode::kReadUncommitted}) {
    for (int keys : {8, 256}) {
      benchmark::RegisterBenchmark("BM_StoreRun", BM_StoreRun)
          ->Args({static_cast<int>(m), keys});
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
