#include "store/store.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace crooks::store {

ct::IsolationLevel contract_of(CCMode m) {
  switch (m) {
    case CCMode::kSerial:
    case CCMode::kTwoPhaseLocking:
    case CCMode::kWoundWait: return ct::IsolationLevel::kStrictSerializable;
    case CCMode::kSnapshotIsolation: return ct::IsolationLevel::kAnsiSI;
    case CCMode::kReadAtomic: return ct::IsolationLevel::kReadAtomic;
    case CCMode::kReadCommitted: return ct::IsolationLevel::kReadCommitted;
    case CCMode::kReadUncommitted: return ct::IsolationLevel::kReadUncommitted;
  }
  return ct::IsolationLevel::kReadUncommitted;
}

TxnId Store::begin(SessionId session, SiteId site, Timestamp priority,
                   std::optional<ct::IsolationLevel> level) {
  const TxnId id{next_id_++};
  ActiveTxn t;
  t.session = session;
  t.site = site;
  t.level = level;
  t.start_ts = tick();
  t.priority = priority == kNoTimestamp ? t.start_ts : priority;
  if (mode_ == CCMode::kSnapshotIsolation) t.snapshot = t.start_ts;
  active_.emplace(id, std::move(t));
  return id;
}

const Store::VersionRec* Store::latest_committed(Key k, Timestamp at_most) const {
  auto it = versions_.find(k);
  if (it == versions_.end()) return nullptr;
  const VersionRec* best = nullptr;
  for (const VersionRec& v : it->second) {
    if (v.aborted || v.commit_ts == kNoTimestamp) continue;
    if (v.commit_ts > at_most) continue;
    if (best == nullptr || v.commit_ts > best->commit_ts) best = &v;
  }
  return best;
}

ReadResult Store::read(TxnId id, Key k) {
  auto it = active_.find(id);
  if (it == active_.end()) throw std::logic_error("read on inactive transaction");
  ActiveTxn& t = it->second;

  // Read-your-own-writes, in every mode.
  if (t.write_set.contains(k) || t.dirty.contains(k)) {
    t.events.push_back({adya::EventType::kRead, k, adya::Version{id, 1}});
    return {StepStatus::kOk, model::Value{id}};
  }

  if (mode_ == CCMode::kTwoPhaseLocking || mode_ == CCMode::kWoundWait) {
    if (!acquire_lock(t, id, k, /*exclusive=*/false)) {
      // Wait-die: acquire_lock aborts the transaction when it must die.
      return active_.contains(id) ? ReadResult{StepStatus::kBlocked, {}}
                                  : ReadResult{StepStatus::kAborted, {}};
    }
  }

  return read_version(t, k);
}

ReadResult Store::read_version(ActiveTxn& t, Key k) {
  TxnId observed = kInitTxn;

  if (mode_ == CCMode::kReadUncommitted) {
    // Newest non-aborted write, committed or not (dirty reads allowed).
    auto it = versions_.find(k);
    const VersionRec* best = nullptr;
    if (it != versions_.end()) {
      for (const VersionRec& v : it->second) {
        if (v.aborted) continue;
        if (best == nullptr || v.created_ts > best->created_ts) best = &v;
      }
    }
    if (best != nullptr) observed = best->writer;
  } else {
    const Timestamp bound = mode_ == CCMode::kSnapshotIsolation
                                ? t.snapshot
                                : std::numeric_limits<Timestamp>::max();
    const VersionRec* v = latest_committed(k, bound);
    if (v != nullptr) observed = v->writer;
  }

  t.events.push_back({adya::EventType::kRead, k, adya::Version{observed, 1}});
  return {StepStatus::kOk, model::Value{observed}};
}

StepStatus Store::write(TxnId id, Key k) {
  auto it = active_.find(id);
  if (it == active_.end()) throw std::logic_error("write on inactive transaction");
  ActiveTxn& t = it->second;
  if (t.write_set.contains(k) || t.dirty.contains(k)) {
    throw std::invalid_argument("a transaction writes a key at most once (§3)");
  }

  if (mode_ == CCMode::kTwoPhaseLocking || mode_ == CCMode::kWoundWait) {
    if (!acquire_lock(t, id, k, /*exclusive=*/true)) {
      return active_.contains(id) ? StepStatus::kBlocked : StepStatus::kAborted;
    }
  }

  t.events.push_back({adya::EventType::kWrite, k, adya::Version{id, 1}});
  if (mode_ == CCMode::kReadUncommitted) {
    // Publish immediately: other transactions may dirty-read it.
    auto& vs = versions_[k];
    vs.push_back({id, kNoTimestamp, /*aborted=*/false, tick()});
    t.dirty.emplace(k, vs.size() - 1);
  } else {
    t.write_set.insert(k);
  }
  return StepStatus::kOk;
}

bool Store::acquire_lock(ActiveTxn& t, TxnId id, Key k, bool exclusive) {
  LockState& l = locks_[k];
  const bool have_s = l.s_owners.contains(id);
  const bool have_x = l.x_owner == id;

  auto conflicts = [&]() {
    std::vector<TxnId> out;
    if (l.x_owner != kInitTxn && l.x_owner != id) out.push_back(l.x_owner);
    if (exclusive) {
      for (TxnId s : l.s_owners) {
        if (s != id) out.push_back(s);
      }
    }
    return out;
  };

  const std::vector<TxnId> cs = conflicts();
  if (cs.empty()) {
    if (exclusive) {
      l.x_owner = id;
    } else if (!have_x && !have_s) {
      l.s_owners.insert(id);
    }
    t.locks_held.insert(k);
    return true;
  }

  if (mode_ == CCMode::kWoundWait) {
    // Wound-wait: an older requester aborts ("wounds") every younger holder
    // and takes the lock; a younger requester waits.
    for (TxnId holder : cs) {
      const auto hit = active_.find(holder);
      assert(hit != active_.end());
      if (t.priority > hit->second.priority) return false;  // wait
    }
    for (TxnId holder : cs) abort(holder);  // wound them all
    if (exclusive) {
      l.x_owner = id;
    } else {
      l.s_owners.insert(id);
    }
    t.locks_held.insert(k);
    return true;
  }

  // Wait-die: older (smaller priority) requesters wait; younger die.
  for (TxnId holder : cs) {
    const auto hit = active_.find(holder);
    assert(hit != active_.end());
    if (t.priority > hit->second.priority) {
      abort(id);  // die
      return false;
    }
  }
  return false;  // wait (caller sees kBlocked)
}

void Store::release_locks(ActiveTxn& t, TxnId id) {
  for (Key k : t.locks_held) {
    LockState& l = locks_[k];
    if (l.x_owner == id) l.x_owner = kInitTxn;
    l.s_owners.erase(id);
  }
  t.locks_held.clear();
}

StepStatus Store::commit(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) throw std::logic_error("commit on inactive transaction");
  ActiveTxn& t = it->second;

  if (mode_ == CCMode::kSnapshotIsolation) {
    // First-committer-wins: abort if any written key gained a committed
    // version after our snapshot.
    for (Key k : t.write_set) {
      auto vit = versions_.find(k);
      if (vit == versions_.end()) continue;
      for (const VersionRec& v : vit->second) {
        if (!v.aborted && v.commit_ts != kNoTimestamp && v.commit_ts > t.snapshot) {
          abort(id);
          return StepStatus::kAborted;
        }
      }
    }
  }

  if (mode_ == CCMode::kReadAtomic) {
    // RAMP-style read repair: a transaction's final observed values must be
    // pairwise atomic. If an observed writer also wrote another key we read,
    // upgrade that read to the writer's (or a newer observed) version.
    // Fixpoint: versions only move forward.
    auto commit_ts_of = [&](Key k, TxnId w) -> Timestamp {
      if (w == kInitTxn) return -1;
      for (const VersionRec& v : versions_.at(k)) {
        if (v.writer == w && !v.aborted && v.commit_ts != kNoTimestamp) {
          return v.commit_ts;
        }
      }
      return -1;
    };
    auto wrote = [&](TxnId w, Key k) {
      auto vit = versions_.find(k);
      if (vit == versions_.end()) return false;
      for (const VersionRec& v : vit->second) {
        if (v.writer == w && !v.aborted && v.commit_ts != kNoTimestamp) return true;
      }
      return false;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const adya::Event& e1 : t.events) {
        if (e1.type != adya::EventType::kRead || e1.version.writer == id) continue;
        const TxnId w1 = e1.version.writer;
        if (w1 == kInitTxn) continue;
        for (adya::Event& e2 : t.events) {
          if (e2.type != adya::EventType::kRead || e2.version.writer == id) continue;
          if (e2.key == e1.key || !wrote(w1, e2.key)) continue;
          if (commit_ts_of(e2.key, w1) > commit_ts_of(e2.key, e2.version.writer)) {
            e2.version.writer = w1;
            changed = true;
          }
        }
      }
    }
  }

  // Install buffered writes at a single commit point.
  const Timestamp cts = tick();
  for (Key k : t.write_set) {
    versions_[k].push_back({id, cts, /*aborted=*/false, cts});
  }
  for (auto& [k, idx] : t.dirty) {  // RU: mark the published versions committed
    versions_[k][idx].commit_ts = cts;
  }
  release_locks(t, id);

  ActiveTxn done = std::move(t);
  active_.erase(id);
  finish(id, std::move(done), /*committed=*/true, cts);
  return StepStatus::kOk;
}

void Store::abort(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;  // already finished
  ActiveTxn& t = it->second;
  for (auto& [k, idx] : t.dirty) versions_[k][idx].aborted = true;
  release_locks(t, id);
  ActiveTxn done = std::move(t);
  active_.erase(id);
  finish(id, std::move(done), /*committed=*/false, kNoTimestamp);
}

void Store::finish(TxnId id, ActiveTxn&& t, bool committed, Timestamp commit_ts) {
  adya::HistTxn h;
  h.id = id;
  h.committed = committed;
  h.session = t.session;
  h.site = t.site;
  h.start_ts = t.start_ts;
  h.commit_ts = commit_ts;
  h.level = t.level;
  h.events = std::move(t.events);
  finished_.push_back(std::move(h));
  (committed ? committed_ : aborted_)++;
}

adya::History Store::history() const {
  if (!active_.empty()) {
    throw std::logic_error("exporting a history with transactions still active");
  }
  return adya::History(finished_, version_order());
}

std::unordered_map<Key, std::vector<TxnId>> Store::version_order() const {
  // Install order per key = commit-timestamp order of committed versions.
  std::unordered_map<Key, std::vector<std::pair<Timestamp, TxnId>>> tmp;
  for (const auto& [k, vs] : versions_) {
    for (const VersionRec& v : vs) {
      if (!v.aborted && v.commit_ts != kNoTimestamp) tmp[k].emplace_back(v.commit_ts, v.writer);
    }
  }
  std::unordered_map<Key, std::vector<TxnId>> out;
  for (auto& [k, vs] : tmp) {
    std::sort(vs.begin(), vs.end());
    auto& order = out[k];
    order.reserve(vs.size());
    for (auto& [ts, id] : vs) order.push_back(id);
  }
  return out;
}

model::TransactionSet Store::observations() const { return adya::to_observations(history()); }

}  // namespace crooks::store
