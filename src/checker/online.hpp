// Streaming isolation monitor.
//
// Real deployments don't audit after the fact — they watch the commit stream.
// OnlineChecker consumes committed transactions in the order the system
// applied them (the system's natural execution witness) and maintains, per
// tracked isolation level, whether the execution-so-far still satisfies
// every commit test. Appending is incremental: per-key version timelines
// grow append-only, a transaction's commit test is evaluated once at its
// append (placement fixes its verdict forever — the same observation that
// makes the exhaustive engine's pruning sound), and real-time/session
// recency clauses are re-checked retroactively when a late transaction
// reveals an inversion.
//
// The checker owns a growable CompiledHistory and feeds every appended block
// through CompiledHistory::extend, so the whole stream — first block or
// ten-thousandth — is evaluated on compiled ops: writer recency is a dense
// integer compare, phantom/internal/unknown-writer branches are precomputed
// flags, and the real-time recency clauses use the monotone commit order the
// timed levels themselves enforce (binary search instead of an O(n) scan).
// There is no hashed fallback path; stats().hashed_fallback_appends exists
// purely as a regression tripwire (asserted == 0 by the differential suite
// and by CI's bench gate). The frozen per-transaction hashed monitor lives in
// checker::reference::OnlineCheckerHashed for differential testing and as
// the bench baseline.
//
// The verdict is per-execution (CT_I over THIS order), the streaming
// analogue of ct::test_execution. A violation here means the system's own
// apply order is not a witness; the ∃e question can still be asked offline
// with checker::check.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "committest/levels.hpp"
#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "model/compiled.hpp"
#include "model/transaction.hpp"

namespace crooks::checker {

class OnlineChecker {
 public:
  /// Track the given levels (default: all of them).
  explicit OnlineChecker(std::vector<ct::IsolationLevel> levels =
                             {ct::kAllLevels.begin(), ct::kAllLevels.end()});

  struct LevelStatus {
    bool ok = true;
    std::optional<TxnId> first_violation;
    std::string explanation;
  };

  /// Mixed-level monitor: evaluate every appended transaction at its own
  /// `level=` annotation (falling back to `fallback` when unannotated) and
  /// maintain ONE status — the streaming analogue of
  /// ct::test_execution(LevelAssignment, ...). Because a later block may
  /// annotate any level, this mode always takes the general ingest path
  /// (never the weak-only direct path), builds every transaction's PREC set
  /// (a future PSI-level transaction needs its predecessors' closures), and
  /// drops the sorted-commit-prefix shortcut of the timed recency clauses —
  /// untimed transactions interleave freely, so real-time predecessors are
  /// found by scan instead of binary search.
  /// Construct as: OnlineChecker c(OnlineChecker::kTrackAssigned, fallback);
  /// (A tag, not a one-member options struct: a braced {level} argument must
  /// keep meaning "track exactly this level" via the vector constructor.)
  struct TrackAssignedTag {};
  static constexpr TrackAssignedTag kTrackAssigned{};
  OnlineChecker(TrackAssignedTag,
                ct::IsolationLevel fallback = ct::IsolationLevel::kSerializable);

  /// True for a checker built by track_assigned().
  bool assigned_mode() const { return assigned_mode_; }

  /// Bounded-memory windowing. When either limit is set the checker retires
  /// its prefix in epochs: once the resident tail exceeds the limit, a
  /// watermark W is chosen, everything before W is folded into a summarized
  /// base (per-key latest retired version, per-session recency marker,
  /// retired PREC closures restricted to still-testable slots, the compiled
  /// history's retained scalar/footprint columns), and the per-transaction
  /// state — placed ops, PREC bitsets, compiled op rows, transaction
  /// payloads — is reclaimed. Memory then stays O(window + keys + sessions)
  /// for an arbitrarily long stream.
  ///
  /// The windowed monitor is ONE-SIDED: it never reports a violation an
  /// unwindowed checker would not, and it misses a violation only when the
  /// witness reaches past the watermark. Every potentially lossy evaluation
  /// is counted (stats().past_window_reads / past_window_checks); when both
  /// counters are 0 the windowed verdicts, first-violation ids and
  /// explanations are identical to an unwindowed run — the differential
  /// suite asserts exactly this.
  ///
  /// The watermark never passes any session's most recently applied
  /// transaction, so a stalled session pins the window (memory grows until
  /// it commits again) rather than degrading that session's verdicts.
  struct WindowOptions {
    /// Retire when more than this many transactions are resident (0 = off).
    std::size_t max_resident_txns = 0;
    /// Retire when the resident-memory ESTIMATE (see resident_bytes())
    /// exceeds this many bytes (0 = off). Both limits may be set; the
    /// tighter one wins.
    std::size_t max_resident_bytes = 0;
    bool enabled() const { return max_resident_txns != 0 || max_resident_bytes != 0; }
  };
  void set_window(WindowOptions w) { window_ = w; }
  const WindowOptions& window() const { return window_; }

  /// First dense index NOT yet retired (== number of retired transactions).
  model::TxnIdx watermark() const { return stream_.retired(); }
  /// Transactions currently resident (total appended = size()).
  std::size_t resident_txns() const { return txns_.size(); }
  /// Compiled operations currently resident in the stream.
  std::size_t resident_ops() const { return stream_.resident_ops(); }
  /// Rough resident-footprint estimate in bytes (placed state + compiled
  /// rows + transaction payloads). Drives the max_resident_bytes limit; the
  /// retained per-transaction summary columns (~100 B/txn, grow with the
  /// whole stream) are intentionally excluded — a window cannot bound them.
  std::size_t resident_bytes() const {
    return placed_bytes_ + txns_.size() * kTxnBytesEst +
           stream_.resident_ops() * kOpBytesEst;
  }

  /// The single mixed-assignment status (assigned mode only). Its
  /// explanation names the violated transaction's own level.
  const LevelStatus& assigned_status() const { return assigned_status_; }

  /// Streaming throughput accounting, exported by bench_online_incremental
  /// and asserted by the differential suite.
  struct Stats {
    std::uint64_t blocks = 0;            // extend() calls (append() = block of 1)
    std::uint64_t compiled_appends = 0;  // transactions evaluated on compiled deltas
    /// Transactions evaluated on the pre-compile hashed path. Always 0 —
    /// every call path compiles — kept as a regression tripwire (CI fails the
    /// bench gate if it ever goes positive).
    std::uint64_t hashed_fallback_appends = 0;
    std::uint64_t duplicates_ignored = 0;
    /// Compiled operations whose read-state views were computed — the online
    /// analogue of CheckResult::nodes_explored, so the streaming monitor's
    /// effort is comparable with the offline engines' on one dashboard.
    std::uint64_t ops_evaluated = 0;
    /// Transactions evaluated on the weak-level direct path (every tracked
    /// level in {RU, RC, RA, PSI}): no timeline binary searches, no per-op
    /// interval storage. Equals compiled_appends on a weak-only checker and
    /// 0 when any stronger level is tracked.
    std::uint64_t direct_appends = 0;
    // --- Windowed mode (all 0 when no window is set) ---
    std::uint64_t retired_txns = 0;  // transactions folded past the watermark
    std::uint64_t retired_ops = 0;   // compiled op rows reclaimed
    std::uint64_t window_folds = 0;  // retirement epochs
    /// Reads of a version old enough that writes BETWEEN it and the window
    /// were dropped: the read-state interval (and the CAUS-VIS timeline
    /// walk) may be too permissive. The only read-side lossy event.
    std::uint64_t past_window_reads = 0;
    /// The remaining lossy evaluations: a Session-SI lower bound that may
    /// hide behind the retained retired-session marker, or a PREC absorb of
    /// a retired writer whose closure summary was dropped (it stopped being
    /// any key's newest retired writer). Like past_window_reads these are
    /// one-sided: missed violations, never fabricated ones.
    std::uint64_t past_window_checks = 0;
  };

  /// Append the next committed transaction. Returns false if the id was
  /// already seen or reserved (the transaction is ignored).
  bool append(const model::Transaction& txn);

  /// Append a block of transactions in declaration order, returning how many
  /// were accepted (duplicates are ignored, not errors). The block is
  /// compiled as one CompiledDelta — fresh checker or not, every transaction
  /// is evaluated on compiled ops; there is no fallback to the hashed path.
  std::size_t append_all(std::span<const model::Transaction> block);
  std::size_t append_all(const model::TransactionSet& txns);
  /// Compatibility overload: audits ch's transactions in dense order. The
  /// checker re-compiles them into its own stream (ch's dense indices need
  /// not match the stream's).
  std::size_t append_all(const model::CompiledHistory& ch);

  const LevelStatus& status(ct::IsolationLevel level) const;
  bool all_ok() const;
  /// Total transactions ever appended (resident + retired).
  std::size_t size() const { return stream_.size(); }
  const Stats& stats() const { return stats_; }

  /// The levels still satisfied by the execution so far.
  std::vector<ct::IsolationLevel> surviving_levels() const;

  /// The compiled view of the stream so far (dense index == apply order).
  /// Any engine can consume it, e.g. for an offline ∃e check of the prefix.
  const model::CompiledHistory& stream() const { return stream_; }

  /// One recorded violation, delivered to the violation hook at event time —
  /// while the failing transaction's compiled ops are still resident (the
  /// hook fires before the window's end-of-ingest retirement; only the
  /// retroactive-inversion victim can already sit below the watermark).
  struct ViolationEvent {
    ct::IsolationLevel level = ct::IsolationLevel::kReadUncommitted;
    TxnId txn{};                              // the violated transaction
    model::TxnIdx dense = model::kNoTxnIdx;   // its apply-order slot in stream()
    /// The clause's other transaction (fractured/missed writer, C-ORD
    /// predecessor, retroactive inverter); kNoTxnIdx when the clause names
    /// none.
    model::TxnIdx other = model::kNoTxnIdx;
    std::string_view why;  // the raw clause text; valid only during the call
  };

  /// Observe every sticky-first violation as it is recorded (once per level
  /// in uniform mode, once total in assigned mode). The forensics collector
  /// attaches here; pass nullptr to detach.
  void set_violation_hook(std::function<void(const ViolationEvent&)> hook) {
    violation_hook_ = std::move(hook);
  }

 private:
  struct OpView {
    StateInterval rs;
    bool internal = false;
  };

  /// A PREC closure that survives window folds. `recent` is a bitset over
  /// slots ≥ prec_origin_ (bit i ⇔ slot prec_origin_ + i); `old` is a small
  /// sorted vector of retired BASE slots below the origin — the only retired
  /// slots that can still be tested (they appear in a timeline as a key's
  /// latest retired writer). A fold shifts the origin by whole words
  /// (DynamicBitset::drop_words), harvesting dropped closure members that
  /// are still base slots into `old` and pruning the rest.
  struct PrecSet {
    DynamicBitset recent;
    std::vector<std::size_t> old;
  };

  struct Placed {
    StateIndex state = 0;  // 1-based; == dense index + 1
    std::vector<OpView> ops;
    PrecSet prec;  // populated only when PSI is tracked (or assigned mode)
  };

  /// Per-session recency record. `states` holds RESIDENT applied states
  /// ascending; `marker` is the largest retired state of the session (0 if
  /// none) and `dropped_any` whether any session state was dropped beyond
  /// the marker — together they decide when a Session-SI lower bound is
  /// potentially lossy (counted in past_window_checks).
  struct SessionRec {
    std::vector<StateIndex> states;
    StateIndex marker = 0;
    bool dropped_any = false;
  };

  /// Is `level` evaluated for the transaction currently being ingested?
  /// Uniform mode: a fixed set. Assigned mode: exactly the transaction's own
  /// level (current_level_, set at the top of evaluate_new).
  bool tracking(ct::IsolationLevel level) const {
    return assigned_mode_ ? level == current_level_ : statuses_.contains(level);
  }
  bool status_ok(ct::IsolationLevel level) const {
    return assigned_mode_ ? assigned_status_.ok : statuses_.at(level).ok;
  }
  /// The level transaction `d` is evaluated at in assigned mode.
  ct::IsolationLevel assigned_level_of(model::TxnIdx d) const {
    const std::uint8_t t = stream_.level_tag(d);
    return t == model::CompiledHistory::kNoLevelTag
               ? assigned_fallback_
               : static_cast<ct::IsolationLevel>(t);
  }
  /// Record a sticky-first violation of `level` by dense slot `d`; `other`
  /// is the clause's other transaction when it names one. One exit for the
  /// status flip, the {level, session} counter, the trace event and the
  /// violation hook.
  void violate(ct::IsolationLevel level, model::TxnIdx d, std::string why,
               model::TxnIdx other = model::kNoTxnIdx);

  /// Shared tail of every append path: compute the read-state views of the
  /// block's transactions against the stream prefix, evaluate their commit
  /// tests, and install them (timelines, session index, recency maxima).
  void ingest(const model::CompiledDelta& delta);
  /// Weak-level direct path, taken when every tracked level is in
  /// {RU, RC, RA, PSI}. For those levels only the read-state *start* of each
  /// op matters: PREREAD emptiness is a pure flags/dense-index fact (a member
  /// version's interval is never empty), the RA fracture compares rs.first,
  /// and on a timeline entry `pos > rs.last` ⟺ `pos > rs.first`. So the
  /// per-op timeline binary search and interval storage both disappear;
  /// verdicts and explanations are byte-identical to the general path.
  void ingest_weak_txn(model::TxnIdx d);
  void evaluate_new(model::TxnIdx d, Placed& p);
  void check_retroactive_inversions(model::TxnIdx d);
  void commit_placed(model::TxnIdx d, Placed p);

  // --- Windowing ---
  /// Placed record of dense slot s (must be resident: s ≥ watermark()).
  Placed& placed_of(std::size_t slot) { return txns_[slot - placed_base_]; }
  const Placed& placed_of(std::size_t slot) const {
    return txns_[slot - placed_base_];
  }
  /// slot ∈ PREC closure of p? Exact for every slot ≥ prec_origin_ and for
  /// every current base slot; no other slot is ever tested.
  bool prec_test(const Placed& p, std::size_t slot) const {
    if (slot >= prec_origin_) {
      const std::size_t i = slot - prec_origin_;
      return i < p.prec.recent.size() && p.prec.recent.test(i);
    }
    return std::binary_search(p.prec.old.begin(), p.prec.old.end(), slot);
  }
  void prec_add(Placed& p, std::size_t slot) {
    if (slot >= prec_origin_) {
      const std::size_t i = slot - prec_origin_;
      p.prec.recent.grow(i + 1);
      p.prec.recent.set(i);
      return;
    }
    auto it = std::lower_bound(p.prec.old.begin(), p.prec.old.end(), slot);
    if (it == p.prec.old.end() || *it != slot) p.prec.old.insert(it, slot);
  }
  /// Absorb slot and its transitive closure into p's PREC set, whether the
  /// slot is resident (Placed bitsets) or a retired base slot (base_prec_).
  void prec_absorb(Placed& p, std::size_t slot);
  /// Rough per-Placed footprint, for the max_resident_bytes estimate.
  static std::size_t placed_bytes(const Placed& p) {
    return sizeof(Placed) + p.ops.capacity() * sizeof(OpView) +
           (p.prec.recent.size() + 7) / 8 +
           p.prec.old.capacity() * sizeof(std::size_t);
  }
  /// End-of-ingest hook: decide a watermark (resident excess, clamped so no
  /// session's latest applied transaction retires, with hysteresis) and fold.
  void maybe_retire();
  /// Fold everything before dense index `upto` into the summarized base.
  void fold_to(model::TxnIdx upto);

  /// Timeline of dense key `k`, or null when nothing applied wrote it yet.
  const std::vector<std::pair<StateIndex, std::size_t>>* timeline_of(
      model::KeyIdx k) const {
    return k >= timelines_.size() || timelines_[k].empty() ? nullptr
                                                           : &timelines_[k];
  }

  std::map<ct::IsolationLevel, LevelStatus> statuses_;
  model::CompiledHistory stream_;  // owning; dense index == apply order
  // Placed records of RESIDENT transactions: txns_[i] is dense slot
  // placed_base_ + i. Front-erased by fold_to.
  std::vector<Placed> txns_;
  // Timelines indexed by the stream's KeyIdx: (installed state, dense writer).
  // After a fold a timeline keeps its resident entries plus AT MOST ONE
  // retired entry in front — the key's latest retired writer (its base slot):
  // back() stays exact for NO-CONF and the CAUS-VIS walk still sees the
  // newest version a resident read could have skipped.
  std::vector<std::vector<std::pair<StateIndex, std::size_t>>> timelines_;
  // Per key: largest timeline position ever DROPPED by a fold. A read of a
  // version below this bound may have lost its true next-write (lossy,
  // counted); at or above it the kept entries reconstruct the interval
  // exactly.
  std::vector<StateIndex> max_dropped_pos_;
  // Per-session recency records, for the Session SI lower bound.
  std::unordered_map<SessionId, SessionRec> session_states_;
  // --- Window state ---
  WindowOptions window_;
  std::size_t placed_base_ = 0;  // == stream_.retired(): dense slot of txns_[0]
  std::size_t prec_origin_ = 0;  // word-aligned (×64), ≤ placed_base_
  // closure(b) ∩ current base slots, sorted, for every retired base slot b.
  std::unordered_map<std::size_t, std::vector<std::size_t>> base_prec_;
  std::size_t placed_bytes_ = 0;  // Σ placed_bytes over resident txns_
  static constexpr std::size_t kTxnBytesEst = 320;  // Transaction + set nodes
  static constexpr std::size_t kOpBytesEst = 32;    // compiled rows + timeline
  // Max start_ts over applied transactions: a late transaction can invert a
  // real-time clause iff some applied transaction started after it committed.
  Timestamp max_start_applied_ = kNoTimestamp;
  // True when every tracked level is untimed-weak (RU/RC/RA/PSI): fixed at
  // construction, routes ingest() to the direct per-transaction path.
  bool weak_only_ = false;
  // --- Assigned (mixed-level) mode, set by track_assigned() ---
  bool assigned_mode_ = false;
  ct::IsolationLevel assigned_fallback_ = ct::IsolationLevel::kSerializable;
  LevelStatus assigned_status_;
  // Level of the transaction currently in evaluate_new (assigned mode).
  ct::IsolationLevel current_level_ = ct::IsolationLevel::kSerializable;
  // Bitmask of the levels applied transactions were evaluated at — lets the
  // retroactive-inversion pass exit early when no applied transaction holds
  // a real-time/session clause.
  std::uint16_t applied_mask_ = 0;
  // Scratch: per-op read-state starts for the transaction being ingested on
  // the weak path (reused across transactions to avoid reallocation).
  std::vector<StateIndex> weak_firsts_;
  // Scratch for append_all's duplicate filter (a monitor appends for days;
  // one hash table outlives every batch instead of one allocation per batch).
  std::unordered_set<TxnId> append_seen_;
  std::vector<model::Transaction> append_fresh_;
  std::function<void(const ViolationEvent&)> violation_hook_;
  Stats stats_;
};

}  // namespace crooks::checker
