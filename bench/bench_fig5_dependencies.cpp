// Figure 5: number of dependencies per transaction as a function of time,
// under the traditional PSI definition vs the client-centric one.
//
// Paper setup: TARDiS, 3 replicas, read-write transactions (3 reads + 3
// writes), uniform access over 10,000 objects; reported outcome: the
// client-centric definition reduces per-transaction dependencies by about
// two orders of magnitude (175×).
//
// Our substitute: the discrete-event replication simulator with the same
// workload shape (see DESIGN.md for why the substitution preserves the
// metric). Absolute values depend on the replication-lag parameter; the
// paper's claim is the gap, which should be ≥ two orders of magnitude.
#include <cstdio>
#include <vector>

#include "replication/simulator.hpp"

using namespace crooks;

int main() {
  repl::SimOptions o;
  o.sites = 3;
  o.keys = 10'000;
  o.transactions = 12'000;
  o.reads_per_txn = 3;
  o.writes_per_txn = 3;
  o.replication_delay = 3'000;  // steady-state unreplicated prefix ≈ delay/sites
  o.site_local_writes = true;   // geo-style write ownership: no ww aborts
  o.seed = 1;

  const repl::SimResult r = repl::simulate(o);

  std::printf("Figure 5: dependencies per transaction over time\n");
  std::printf("(3 sites, 10k keys, 3 reads + 3 writes, uniform; %zu committed)\n\n",
              r.committed);
  std::printf("%12s %22s %22s\n", "time bucket", "traditional PSI deps", "client-centric deps");

  const std::size_t buckets = 12;
  const std::size_t per = r.txns.size() / buckets;
  double total_trad = 0, total_cc = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    double trad = 0, cc = 0;
    for (std::size_t i = b * per; i < (b + 1) * per; ++i) {
      trad += static_cast<double>(r.txns[i].traditional_deps);
      cc += static_cast<double>(r.txns[i].client_deps);
    }
    total_trad += trad;
    total_cc += cc;
    std::printf("%12zu %22.1f %22.2f\n", b, trad / static_cast<double>(per),
                cc / static_cast<double>(per));
  }
  const double n = static_cast<double>(buckets * per);
  std::printf("\n%12s %22.1f %22.2f\n", "mean", total_trad / n, total_cc / n);
  std::printf("\nreduction factor: %.0fx   (paper reports 175x on TARDiS)\n",
              (total_trad / n) / (total_cc / n));
  return 0;
}
