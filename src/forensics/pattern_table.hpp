// Bounded pattern store: the fleet-level aggregate over canonical witnesses.
//
// Honors the PR 8 flat-memory contract: every container here has a fixed
// capacity set at construction. Patterns beyond max_patterns fold into one
// overflow bucket; hot keys/sessions are space-saving sketches (Metwally et
// al.) of fixed width; mining reads a bounded head-sample of witnesses.
// Everything is deterministic — insertion order, eviction choice (first
// minimum slot) and every sort key are functions of the witness sequence
// alone, never of wall-clock time or memory addresses — which is what lets
// CI demand byte-identical reports across thread counts and across offline
// vs --follow replays of the same log.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "forensics/forensics.hpp"

namespace crooks::forensics {

/// Space-saving top-k heavy-hitter sketch over uint64 items. Deterministic:
/// a new item evicts the FIRST minimum-count slot and inherits its count
/// (the classic overestimate bound: true count ≤ reported count).
class SpaceSaving {
 public:
  struct Entry {
    std::uint64_t item = 0;
    std::uint64_t count = 0;
  };

  explicit SpaceSaving(std::size_t k = 8) : k_(k) {}

  void add(std::uint64_t item);
  /// Entries ordered by (count desc, item asc) — the render order.
  std::vector<Entry> top() const;
  bool empty() const { return slots_.empty(); }

 private:
  std::size_t k_;
  std::vector<Entry> slots_;
};

/// The closed engine universe of by_engine splits (every CheckResult::engine
/// spelling plus the online monitor).
inline constexpr std::array<std::string_view, 7> kEngineNames = {
    "online", "direct", "graph", "exhaustive", "heuristic", "hierarchy",
    "unknown"};
std::size_t engine_index(std::string_view engine);  // kEngineNames.size()-1 fallback

/// One aggregated pattern: every witness whose (clause, canonical shape)
/// fingerprint matched.
struct PatternRow {
  std::uint64_t fingerprint = 0;
  std::string name;   // e.g. "snapshot/write-skew" or "preread-3f91ac"
  std::string shape;  // canonical shape rendering
  Clause clause = Clause::kOther;
  std::uint64_t count = 0;
  /// Witness sequence numbers (1-based, assignment order) — NOT wall clock,
  /// so replays of one log agree byte-for-byte.
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  std::array<std::uint64_t, ct::kAllLevels.size()> by_level{};
  std::array<std::uint64_t, kEngineNames.size()> by_engine{};
  SpaceSaving hot_keys;      // items are Key::value
  SpaceSaving hot_sessions;  // items are SessionId::value
  std::uint64_t truncated = 0;  // summed node-cap drops across witnesses
  Witness exemplar;             // the pattern's first witness
};

/// A recurring sub-shape promoted by the frequent-subgraph pass.
struct MinedPattern {
  std::uint64_t fingerprint = 0;
  std::string name;   // cycle name when recognized, else "shape-<hex>"
  std::string shape;  // canonical rendering
  std::uint64_t support = 0;  // distinct witnesses containing the sub-shape
};

/// Display name for a witness: "<clause>/<cycle>" when the canonical shape
/// contains a recognized 2-cycle, else "<clause>-<hex6 of fingerprint>".
std::string pattern_name(const Witness& w);

class PatternTable {
 public:
  struct Options {
    std::size_t max_patterns = 64;    // distinct rows before overflow folding
    std::size_t hot_k = 8;            // sketch width per row
    std::size_t exemplar_buffer = 256;  // head-sample size the miner reads
    std::size_t mine_max_edges = 3;
    std::uint64_t mine_min_support = 2;
    std::size_t mine_max_promoted = 16;
  };

  PatternTable() : PatternTable(Options{}) {}
  explicit PatternTable(Options opt) : opt_(opt) {}

  void add(const Witness& w);

  std::uint64_t witnesses() const { return seq_; }
  /// Witnesses that arrived after the table was full with an unseen
  /// fingerprint (counted, not aggregated).
  std::uint64_t overflow() const { return overflow_; }
  std::size_t size() const { return rows_.size(); }
  const Options& options() const { return opt_; }

  /// Rows ordered by (count desc, first_seq asc, fingerprint asc) — the
  /// canonical render order every exporter uses.
  std::vector<const PatternRow*> rows() const;

  /// Row aggregating this fingerprint, or nullptr (unseen / overflowed).
  const PatternRow* find(std::uint64_t fingerprint) const {
    auto it = index_.find(fingerprint);
    return it == index_.end() ? nullptr : &rows_[it->second];
  }

  /// Frequent-subgraph pass over the buffered head-sample: every weakly
  /// connected sub-shape (≤ mine_max_edges edges) contained in at least
  /// mine_min_support distinct witnesses, ordered by (support desc,
  /// fingerprint asc), capped at mine_max_promoted.
  std::vector<MinedPattern> mine() const;

  /// The buffered head-sample (first exemplar_buffer witnesses).
  const std::vector<Witness>& sample() const { return buffer_; }

 private:
  Options opt_;
  std::vector<PatternRow> rows_;  // insertion order; bounded by max_patterns
  std::unordered_map<std::uint64_t, std::size_t> index_;  // fingerprint → row
  std::uint64_t seq_ = 0;
  std::uint64_t overflow_ = 0;
  std::vector<Witness> buffer_;
};

}  // namespace crooks::forensics
