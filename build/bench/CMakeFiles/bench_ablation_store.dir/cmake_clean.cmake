file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_store.dir/bench_ablation_store.cpp.o"
  "CMakeFiles/bench_ablation_store.dir/bench_ablation_store.cpp.o.d"
  "bench_ablation_store"
  "bench_ablation_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
