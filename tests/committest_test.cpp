// Commit tests (Tables 1 and 2) evaluated on fixed executions, including the
// paper's Figure 3 banking example and the per-execution hierarchy property.
#include <gtest/gtest.h>

#include "committest/commit_test.hpp"
#include "model/analysis.hpp"

namespace crooks::ct {
namespace {

using model::Execution;
using model::ReadStateAnalysis;
using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kC{0};  // checking account
constexpr Key kS{1};  // savings account
constexpr Key kX{10}, kY{11};

/// Figure 3(b): Alice (T1) and Bob (T2) both read both balances from the
/// initial state and concurrently withdraw: T1 writes C, T2 writes S.
struct WriteSkew : ::testing::Test {
  TransactionSet txns{{
      TxnBuilder(1).read(kC, kInitTxn).read(kS, kInitTxn).write(kC).at(0, 10).build(),
      TxnBuilder(2).read(kC, kInitTxn).read(kS, kInitTxn).write(kS).at(1, 11).build(),
  }};
  Execution e{txns, {TxnId{1}, TxnId{2}}};
  ReadStateAnalysis a{txns, e};
  CommitTester tester{a};
};

TEST_F(WriteSkew, SerializabilityRejectsSecondWithdrawal) {
  EXPECT_TRUE(tester.test(IsolationLevel::kSerializable, 0).ok);
  const CommitTestResult r = tester.test(IsolationLevel::kSerializable, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("not complete"), std::string::npos);
}

TEST_F(WriteSkew, SnapshotIsolationAcceptsBoth) {
  // Both may read from the same stale complete state s0; their write sets
  // are disjoint, so NO-CONF holds — the essence of write skew (§5.1).
  EXPECT_TRUE(tester.test_all(IsolationLevel::kAdyaSI).ok);
  EXPECT_TRUE(tester.test_all(IsolationLevel::kAnsiSI).ok);
  EXPECT_TRUE(tester.test_all(IsolationLevel::kStrongSI).ok);
}

TEST_F(WriteSkew, WeakerLevelsAcceptBoth) {
  EXPECT_TRUE(tester.test_all(IsolationLevel::kPSI).ok);
  EXPECT_TRUE(tester.test_all(IsolationLevel::kReadAtomic).ok);
  EXPECT_TRUE(tester.test_all(IsolationLevel::kReadCommitted).ok);
}

/// Figure 3(a): under serializability T2 must read from its parent state and
/// thus observes T1's withdrawal.
TEST(CommitTest, SerializableBankingObservesParent) {
  TransactionSet txns{{
      TxnBuilder(1).read(kC, kInitTxn).read(kS, kInitTxn).write(kC).build(),
      TxnBuilder(2).read(kC, TxnId{1}).read(kS, kInitTxn).write(kS).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  EXPECT_TRUE(t.test_all(IsolationLevel::kSerializable).ok);
  EXPECT_TRUE(t.test_all(IsolationLevel::kAdyaSI).ok);  // SER ⊂ SI
}

TEST(CommitTest, ReadUncommittedAlwaysPasses) {
  TransactionSet txns{{TxnBuilder(1).read(kX, TxnId{99}).build()}};  // bogus read
  ReadStateAnalysis a(txns, Execution::identity(txns));
  CommitTester t(a);
  EXPECT_TRUE(t.test_all(IsolationLevel::kReadUncommitted).ok);
  EXPECT_FALSE(t.test_all(IsolationLevel::kReadCommitted).ok);
}

TEST(CommitTest, ReadCommittedNeedsPreread) {
  TransactionSet txns{{TxnBuilder(1).write(kX).build(),
                       TxnBuilder(2).read(kX, TxnId{1}).build()}};
  // Order T2 before T1: T2 reads from the future.
  Execution bad(txns, {TxnId{2}, TxnId{1}});
  ReadStateAnalysis a(txns, bad);
  const CommitTestResult r = CommitTester(a).test(IsolationLevel::kReadCommitted,
                                                  txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("PREREAD"), std::string::npos);

  Execution good(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a2(txns, good);
  EXPECT_TRUE(CommitTester(a2).test_all(IsolationLevel::kReadCommitted).ok);
}

TEST(CommitTest, ReadAtomicRejectsFracturedRead) {
  // T1 writes x and y atomically; T2 sees T1's x but the initial y.
  TransactionSet txns{{TxnBuilder(1).write(kX).write(kY).build(),
                       TxnBuilder(2).read(kX, TxnId{1}).read(kY, kInitTxn).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  const CommitTestResult r =
      t.test(IsolationLevel::kReadAtomic, txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("fractured"), std::string::npos);
  EXPECT_TRUE(t.test_all(IsolationLevel::kReadCommitted).ok);  // RC is fine
}

TEST(CommitTest, ReadAtomicAcceptsAtomicObservation) {
  TransactionSet txns{{TxnBuilder(1).write(kX).write(kY).build(),
                       TxnBuilder(2).read(kX, TxnId{1}).read(kY, TxnId{1}).build()}};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  EXPECT_TRUE(CommitTester(a).test_all(IsolationLevel::kReadAtomic).ok);
}

TEST(CommitTest, PsiRejectsCausalityViolation) {
  // T1 writes x; T2 reads x and writes y; T3 reads T2's y but misses T1's x.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).build(),
      TxnBuilder(3).read(kY, TxnId{2}).read(kX, kInitTxn).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  const CommitTestResult r =
      t.test(IsolationLevel::kPSI, txns.dense_index_of(TxnId{3}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("CAUS-VIS"), std::string::npos);
  // Read atomic tolerates it: T2 did not write x.
  EXPECT_TRUE(t.test_all(IsolationLevel::kReadAtomic).ok);
}

TEST(CommitTest, PsiAllowsLongForkButSnapshotLevelsReject) {
  // The long fork: two independent writes observed in opposite orders by
  // two readers. PSI's per-operation read states accommodate it (each read
  // of ⊥ is served by s0, each read of a write by the writer's state —
  // no single snapshot needed); the snapshot family requires a complete
  // state for T3 and T4, which cannot exist.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kY).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).build(),
      TxnBuilder(4).read(kX, kInitTxn).read(kY, TxnId{2}).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}, TxnId{4}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  EXPECT_TRUE(t.test_all(IsolationLevel::kPSI).ok);
  EXPECT_TRUE(t.test_all(IsolationLevel::kReadAtomic).ok);
  // T3 has no complete state (x=T1 needs s ≥ 1, y=⊥ needs s ≤ 1 — s1 works);
  // T4 has none (x=⊥ needs s = 0, y=T2 needs s ≥ 2).
  EXPECT_TRUE(t.test(IsolationLevel::kAdyaSI, txns.dense_index_of(TxnId{3})).ok);
  EXPECT_FALSE(t.test(IsolationLevel::kAdyaSI, txns.dense_index_of(TxnId{4})).ok);
  EXPECT_FALSE(t.test_all(IsolationLevel::kSerializable).ok);
}

TEST(CommitTest, StrictSerializabilityEnforcesRealTime) {
  // T1 commits (t=10) before T2 starts (t=20), but the execution orders T2
  // first. Plain SER accepts; strict SER must reject T1 (real-time pred of
  // T2 placed after it... the violation is detected on T2's sser clause? No:
  // on T1? The clause is per-T: ∀T' <_s T ⇒ s_{T'} →* s_T, so T2 fails.)
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).write(kY).at(20, 30).build(),
  }};
  Execution e(txns, {TxnId{2}, TxnId{1}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  EXPECT_TRUE(t.test_all(IsolationLevel::kSerializable).ok);
  const ExecutionVerdict v = t.test_all(IsolationLevel::kStrictSerializable);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.violating_txn, TxnId{2});
}

TEST(CommitTest, AdyaSiRejectsLostUpdate) {
  TransactionSet txns{{
      TxnBuilder(1).read(kX, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kX).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  const CommitTestResult r =
      t.test(IsolationLevel::kAdyaSI, txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("NO-CONF"), std::string::npos);
  // PSI also rejects it (ww conflict makes T1 ▷ T2, but T2 read stale x).
  EXPECT_FALSE(t.test(IsolationLevel::kPSI, txns.dense_index_of(TxnId{2})).ok);
  // RC tolerates it.
  EXPECT_TRUE(t.test_all(IsolationLevel::kReadCommitted).ok);
}

TEST(CommitTest, TimedLevelsRequireTimestamps) {
  TransactionSet txns{{TxnBuilder(1).write(kX).build()}};
  ReadStateAnalysis a(txns, Execution::identity(txns));
  CommitTester t(a);
  EXPECT_FALSE(t.test(IsolationLevel::kAnsiSI, 0).ok);
  EXPECT_FALSE(t.test(IsolationLevel::kStrongSI, 0).ok);
  EXPECT_TRUE(t.test(IsolationLevel::kAdyaSI, 0).ok);
}

TEST(CommitTest, AnsiSiRequiresCommitOrderedExecution) {
  TransactionSet txns{{TxnBuilder(1).write(kX).at(0, 10).build(),
                       TxnBuilder(2).write(kY).at(1, 5).build()}};
  // Execution T1 then T2 violates C-ORD (T2 committed first in real time).
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  const CommitTestResult r =
      t.test(IsolationLevel::kAnsiSI, txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C-ORD"), std::string::npos);
  // Commit-ordered execution passes.
  Execution e2(txns, {TxnId{2}, TxnId{1}});
  ReadStateAnalysis a2(txns, e2);
  EXPECT_TRUE(CommitTester(a2).test_all(IsolationLevel::kAnsiSI).ok);
}

TEST(CommitTest, SessionSiRejectsTransactionInversion) {
  // Same session: T1 writes x and commits; T2 later reads stale x=⊥.
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(SessionId{1}).at(20, 30).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  // ANSI SI tolerates the stale snapshot...
  EXPECT_TRUE(t.test_all(IsolationLevel::kAnsiSI).ok);
  // ...Session SI does not (T1 →se T2 forces the snapshot past s_{T1}).
  const CommitTestResult r =
      t.test(IsolationLevel::kSessionSI, txns.dense_index_of(TxnId{2}));
  EXPECT_FALSE(r.ok);
}

TEST(CommitTest, SessionSiIgnoresOtherSessions) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(2).read(kX, kInitTxn).session(SessionId{2}).at(20, 30).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  EXPECT_TRUE(t.test_all(IsolationLevel::kSessionSI).ok);
  // Strong SI enforces recency across sessions too.
  EXPECT_FALSE(t.test_all(IsolationLevel::kStrongSI).ok);
}

TEST(CommitTest, StrongSiAcceptsFreshSnapshots) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).at(20, 30).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}});
  ReadStateAnalysis a(txns, e);
  EXPECT_TRUE(CommitTester(a).test_all(IsolationLevel::kStrongSI).ok);
}

/// Per-execution hierarchy (the property the implication lattice asserts):
/// on one fixed execution, passing a stronger test implies passing every
/// weaker one.
TEST(CommitTest, HierarchyHoldsPerExecution) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).at(0, 10).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).session(SessionId{1}).at(12, 20).build(),
      TxnBuilder(3).read(kY, TxnId{2}).read(kX, TxnId{1}).session(SessionId{1}).at(22, 30).build(),
  }};
  Execution e(txns, {TxnId{1}, TxnId{2}, TxnId{3}});
  ReadStateAnalysis a(txns, e);
  CommitTester t(a);
  for (IsolationLevel strong : kAllLevels) {
    if (!t.test_all(strong).ok) continue;
    for (IsolationLevel weak : kAllLevels) {
      if (at_least_as_strong(strong, weak)) {
        EXPECT_TRUE(t.test_all(weak).ok)
            << name_of(strong) << " passed but weaker " << name_of(weak) << " failed";
      }
    }
  }
  // This particular scenario is fully strong: everything should pass.
  EXPECT_TRUE(t.test_all(IsolationLevel::kStrictSerializable).ok);
  EXPECT_TRUE(t.test_all(IsolationLevel::kStrongSI).ok);
}

}  // namespace
}  // namespace crooks::ct
