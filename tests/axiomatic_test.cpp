// Theorem 10(b), executable: the state-based CT_PSI and Cerone's axiomatic
// PSI_A — two entirely different formalisms and two entirely different
// decision procedures — must agree on every observation set.
#include <gtest/gtest.h>

#include "adya/axiomatic.hpp"
#include "checker/checker.hpp"
#include "workload/observations.hpp"

namespace crooks::adya {
namespace {

using model::TransactionSet;
using model::TxnBuilder;

constexpr Key kX{0}, kY{1};

TEST(Axiomatic, CleanChainSatisfiable) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).build(),
      TxnBuilder(3).read(kY, TxnId{2}).read(kX, TxnId{1}).build(),
  }};
  const AxiomaticResult r = check_psi_axiomatic(txns);
  EXPECT_TRUE(r.satisfiable) << r.detail;
}

TEST(Axiomatic, LostUpdateUnsatisfiable) {
  TransactionSet txns{{
      TxnBuilder(1).read(kX, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).write(kX).build(),
  }};
  // NOCONFLICT VIS-orders the two writers; EXT then forces the later one to
  // see the earlier write — but it read ⊥.
  EXPECT_FALSE(check_psi_axiomatic(txns).satisfiable);
}

TEST(Axiomatic, WriteSkewSatisfiable) {
  TransactionSet txns{{
      TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).build(),
  }};
  EXPECT_TRUE(check_psi_axiomatic(txns).satisfiable);
}

TEST(Axiomatic, LongForkSatisfiable) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).write(kY).build(),
      TxnBuilder(3).read(kX, TxnId{1}).read(kY, kInitTxn).build(),
      TxnBuilder(4).read(kX, kInitTxn).read(kY, TxnId{2}).build(),
  }};
  EXPECT_TRUE(check_psi_axiomatic(txns).satisfiable);
}

TEST(Axiomatic, CausalityViolationUnsatisfiable) {
  TransactionSet txns{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).build(),
      TxnBuilder(3).read(kY, TxnId{2}).read(kX, kInitTxn).build(),
  }};
  // TRANSVIS: T3 sees T2 sees T1, so T1's x is visible — yet T3 read ⊥.
  EXPECT_FALSE(check_psi_axiomatic(txns).satisfiable);
}

TEST(Axiomatic, DanglingAndPhantomReadsUnsatisfiable) {
  TransactionSet dangling{{TxnBuilder(1).read(kX, TxnId{99}).build()}};
  EXPECT_FALSE(check_psi_axiomatic(dangling).satisfiable);
  TransactionSet phantom{{TxnBuilder(1).write(kX).build(),
                          TxnBuilder(2).read_intermediate(kX, TxnId{1}).build()}};
  EXPECT_FALSE(check_psi_axiomatic(phantom).satisfiable);
}

TEST(Axiomatic, RejectsOversizedSets) {
  std::vector<model::Transaction> many;
  for (std::uint64_t i = 1; i <= 10; ++i) many.push_back(TxnBuilder(i).write(i).build());
  EXPECT_THROW(check_psi_axiomatic(TransactionSet(std::move(many))),
               std::invalid_argument);
}

TEST(AxiomaticSer, MatchesClassicScenarios) {
  TransactionSet skew{{
      TxnBuilder(1).read(kX, kInitTxn).read(kY, kInitTxn).write(kX).build(),
      TxnBuilder(2).read(kX, kInitTxn).read(kY, kInitTxn).write(kY).build(),
  }};
  EXPECT_FALSE(check_ser_axiomatic(skew).satisfiable);

  TransactionSet chain{{
      TxnBuilder(1).write(kX).build(),
      TxnBuilder(2).read(kX, TxnId{1}).write(kY).build(),
  }};
  EXPECT_TRUE(check_ser_axiomatic(chain).satisfiable);
}

/// Theorem 10(b) over randomized adversarial observations: PSI_A ≡ CT_PSI,
/// and the VIS=AR instance ≡ CT_SER.
class AxiomaticEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AxiomaticEquivalence, SerMatchesStateBasedChecker) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 6;
  opts.keys = 3;
  opts.with_timestamps = false;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);

  const bool axiomatic = check_ser_axiomatic(f.txns).satisfiable;
  const checker::CheckResult state_based =
      checker::check_exhaustive(ct::IsolationLevel::kSerializable, f.txns);
  ASSERT_NE(state_based.outcome, checker::Outcome::kUnknown);
  EXPECT_EQ(axiomatic, state_based.satisfiable()) << "seed " << GetParam();
}

TEST_P(AxiomaticEquivalence, MatchesStateBasedChecker) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 6;
  opts.keys = 3;
  opts.with_timestamps = false;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);

  const bool axiomatic = check_psi_axiomatic(f.txns).satisfiable;
  const checker::CheckResult state_based =
      checker::check_exhaustive(ct::IsolationLevel::kPSI, f.txns);
  ASSERT_NE(state_based.outcome, checker::Outcome::kUnknown);
  EXPECT_EQ(axiomatic, state_based.satisfiable())
      << "seed " << GetParam() << ": PSI_A=" << axiomatic
      << " CT_PSI=" << state_based.satisfiable();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomaticEquivalence,
                         ::testing::Range<std::uint64_t>(1, 201));

}  // namespace
}  // namespace crooks::adya
