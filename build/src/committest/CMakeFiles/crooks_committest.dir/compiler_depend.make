# Empty compiler generated dependencies file for crooks_committest.
# This may be replaced when dependencies are built.
