file(REMOVE_RECURSE
  "CMakeFiles/crooks_store.dir/runner.cpp.o"
  "CMakeFiles/crooks_store.dir/runner.cpp.o.d"
  "CMakeFiles/crooks_store.dir/store.cpp.o"
  "CMakeFiles/crooks_store.dir/store.cpp.o.d"
  "libcrooks_store.a"
  "libcrooks_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
