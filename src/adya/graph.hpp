// Direct Serialization Graphs (DSG) and Start-ordered Serialization Graphs
// (SSG) — Definitions A.4 and A.6.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "adya/history.hpp"
#include "common/ids.hpp"
#include "model/compiled.hpp"

namespace crooks::adya {

enum EdgeKind : std::uint8_t {
  kWW = 1 << 0,  // directly write-depends
  kWR = 1 << 1,  // directly read-depends
  kRW = 1 << 2,  // directly anti-depends
  kSD = 1 << 3,  // start-depends (SSG only)
  kRT = 1 << 4,  // real-time order (strict serializability)
};

inline constexpr std::uint8_t kDependency = kWW | kWR;
inline constexpr std::uint8_t kAllDsg = kWW | kWR | kRW;

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  EdgeKind kind = kWW;
  Key key{};  // the conflicting key (meaningless for kSD / kRT)
};

/// Per-key install orders over a compiled history: `by_key[k]` lists the
/// dense indices of key k's installers in version order (⊥ implicit at the
/// front). This is the interned counterpart of History::version_order() —
/// building it validates the order exactly as the History constructor does.
struct InstallOrders {
  std::vector<std::vector<model::TxnIdx>> by_key;  // indexed by KeyIdx
};

/// Intern and validate a client-supplied version order against a compiled
/// history. Mirrors from_observations + History::validate: completes the
/// order for keys with at most one committed writer, and throws
/// std::invalid_argument with the same messages on a multi-writer key
/// missing from the order, an order naming an unknown transaction or a
/// non-writer, or an order missing a committed writer. `version_order` may
/// be null (treated as empty).
InstallOrders compile_install_orders(
    const model::CompiledHistory& ch,
    const std::unordered_map<Key, std::vector<TxnId>>* version_order);

/// The serialization graph over the committed transactions of a history.
/// Start-dependency and real-time edges are added on demand (they are O(n²)
/// and only needed by the SI / strict-serializability phenomena).
class Dsg {
 public:
  explicit Dsg(const History& h);

  /// Same graph built from the compiled form, without lifting observations
  /// into an Adya history first: node i is dense index i, the read edges come
  /// straight from the precomputed per-op writer resolution (the G1a / G1b
  /// skip conditions are single flag tests), and WW edges follow the interned
  /// install orders. The edge *set* is identical to Dsg(from_observations(...));
  /// only the (irrelevant) edge insertion order differs — and is deterministic
  /// here, where the History path iterates an unordered_map.
  Dsg(const model::CompiledHistory& ch, const InstallOrders& io);

  std::size_t size() const { return ids_.size(); }
  TxnId id_of(std::size_t node) const { return ids_[node]; }
  std::size_t node_of(TxnId id) const { return node_.at(id); }
  bool has_node(TxnId id) const { return node_.contains(id); }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Add T_i --sd--> T_j edges for every pair with commit(T_i) < start(T_j).
  /// Requires timestamps on all committed transactions; returns false (and
  /// adds nothing) otherwise.
  bool add_start_edges(const History& h);

  /// Add T_i --rt--> T_j edges for every real-time-ordered pair (same
  /// predicate as start-dependency; kept as a distinct kind so strict
  /// serializability and SI phenomena do not interfere).
  bool add_realtime_edges(const History& h);

  /// Compiled counterparts: reuse the CompiledHistory's real-time adjacency
  /// (one O(n log n) pass, shared with the exhaustive engine) instead of the
  /// O(n²) timestamp scan. Valid only for a Dsg built from the same `ch`.
  bool add_start_edges(const model::CompiledHistory& ch);
  bool add_realtime_edges(const model::CompiledHistory& ch);

  /// Is there a directed cycle using only edges whose kind is in `mask`?
  bool has_cycle(std::uint8_t mask) const;

  /// Is there a directed cycle containing exactly one edge of kind `single`
  /// and otherwise only edges in `others`? (G-Single, G-SIb.)
  bool cycle_with_exactly_one(EdgeKind single, std::uint8_t others) const;

  /// Nodes of one such cycle (for diagnostics), empty if none.
  std::vector<TxnId> find_cycle(std::uint8_t mask) const;

  /// Nodes of a cycle consisting of exactly one `single` edge plus edges in
  /// `others` (the G-Single / G-SIb shape), empty if none. The returned
  /// sequence starts at the `single` edge's source.
  std::vector<TxnId> find_cycle_with_exactly_one(EdgeKind single,
                                                 std::uint8_t others) const;

 private:
  bool reachable(std::size_t from, std::size_t to, std::uint8_t mask) const;

  std::vector<TxnId> ids_;
  std::unordered_map<TxnId, std::size_t> node_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adj_;   // indices into edges_, by from-node
};

std::string to_string(EdgeKind k);

}  // namespace crooks::adya
