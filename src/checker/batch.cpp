// Batch checking: a size-class sharded scheduler over a thread pool.
//
// Histories in a batch share nothing — each gets its own dispatcher call with
// its own (optional) version order — so the only coordination is the pool
// itself. The scheduler groups work along two axes before submitting:
//
//  * Prefix-extension chains. Audit streams often submit growing prefixes of
//    the same history (check after every block). Consecutive items where each
//    history extends the previous one are detected and compiled once into a
//    growable CompiledHistory, re-using CompiledHistory::extend deltas
//    instead of re-interning the shared prefix per item. A grown compilation
//    is structurally identical to a fresh one (see model/compiled.hpp), so
//    results are still bit-for-bit what a lone check() would produce.
//
//  * Size classes. Millions of tiny audit histories drown in per-task
//    dispatch (queue mutex, std::function allocation, worker wakeup) if each
//    becomes its own pool task, while one factorial refutation starves the
//    batch tail if it runs single-threaded. Chains are therefore classed by
//    the transaction count of their largest history: `tiny` chains are packed
//    many-per-task to amortize dispatch, `medium` chains get one task each,
//    and `large` chains keep one task but run their searches with the
//    branch-parallel exhaustive engine (per the CheckOptions::threads
//    determinism contract: same verdict, possibly a different witness).
//
// Results drain through a bounded MPMC queue as shards complete instead of a
// pool-wide wait() barrier: the caller observes per-shard completion (drain
// latency histogram, per-class effort counters) while late shards still run.
// With threads == 1 the scheduler runs every shard inline, in order, with no
// pool or queue at all — bit-for-bit the sequential loop.
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string_view>
#include <vector>

#include "checker/checker.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

namespace {

using model::Transaction;
using model::TransactionSet;

// --- size classes -----------------------------------------------------------

/// Chains whose largest history has at most this many transactions are packed
/// kTinyPack-per-task; such checks finish in microseconds, so per-task
/// dispatch would dominate their runtime.
constexpr std::size_t kTinyMaxTxns = 6;
/// Chains whose largest history has at least this many transactions may hit
/// factorial refutations; their searches run branch-parallel.
constexpr std::size_t kLargeMinTxns = 9;
/// Tiny chains per shard task.
constexpr std::size_t kTinyPack = 16;

enum class SizeClass : std::uint8_t { kTiny, kMedium, kLarge };

std::string_view class_name(SizeClass c) {
  switch (c) {
    case SizeClass::kTiny: return "tiny";
    case SizeClass::kMedium: return "medium";
    case SizeClass::kLarge: return "large";
  }
  return "?";
}

/// Level-aware: the large class exists to give factorial exhaustive
/// refutations a branch-parallel search, but a direct-eligible level (RC, RA,
/// PSI) is decided by the near-linear single-pass engine regardless of size —
/// promoting its chains to kLarge would fan their searches out for nothing
/// while starving the rest of the batch of workers. An explicit non-auto
/// engine selection keeps the same classing as the engine it forces.
SizeClass class_of(ct::IsolationLevel level, const CheckOptions& opts,
                   std::size_t txn_count) {
  if (txn_count <= kTinyMaxTxns) return SizeClass::kTiny;
  const bool direct_decides = direct_eligible(level) &&
                              (opts.engine == EngineSelect::kAuto ||
                               opts.engine == EngineSelect::kDirect);
  if (txn_count >= kLargeMinTxns && !direct_decides) return SizeClass::kLarge;
  return SizeClass::kMedium;
}

// --- metrics ----------------------------------------------------------------

struct BatchMetrics {
  obs::Counter& items_total = obs::Registry::global().counter(
      "crooks_batch_items_total", "Histories submitted through check_batch");
  obs::Counter& chains_total = obs::Registry::global().counter(
      "crooks_batch_chains_total",
      "Prefix-extension chains scheduled by check_batch (a chain of one is a "
      "lone history)");
  obs::Counter& results_total = obs::Registry::global().counter(
      "crooks_batch_results_total",
      "Results produced by check_batch shards (equals items_total when no "
      "shard failed — the zero-dropped-results invariant CI gates on)");
  obs::Counter& prescan_skips_total = obs::Registry::global().counter(
      "crooks_batch_prescan_skipped_op_compares_total",
      "Per-transaction op-vector comparisons avoided because the cheap "
      "id/size prescan rejected a prefix-extension candidate first");
  obs::Histogram& drain_seconds = obs::Registry::global().histogram(
      "crooks_batch_queue_drain_seconds",
      "Time check_batch blocks on the MPMC result queue per shard completion",
      obs::latency_buckets_seconds());

  obs::Counter& shard_total(SizeClass c) {
    return *shards_[static_cast<std::size_t>(c)];
  }
  obs::Counter& nodes_total(SizeClass c) {
    return *nodes_[static_cast<std::size_t>(c)];
  }
  obs::Counter& edges_total(SizeClass c) {
    return *edges_[static_cast<std::size_t>(c)];
  }

  static BatchMetrics& get() {
    static BatchMetrics m;
    return m;
  }

 private:
  BatchMetrics() {
    for (SizeClass c : {SizeClass::kTiny, SizeClass::kMedium, SizeClass::kLarge}) {
      const obs::Labels labels = {{"class", std::string(class_name(c))}};
      shards_[static_cast<std::size_t>(c)] = &obs::Registry::global().counter(
          "crooks_batch_shard_total", "Shard tasks scheduled per size class",
          labels);
      nodes_[static_cast<std::size_t>(c)] = &obs::Registry::global().counter(
          "crooks_batch_nodes_explored_total",
          "Search nodes explored by check_batch per size class (tune the "
          "shard heuristic from this)",
          labels);
      edges_[static_cast<std::size_t>(c)] = &obs::Registry::global().counter(
          "crooks_batch_edges_visited_total",
          "Graph-engine edges visited by check_batch per size class", labels);
    }
  }

  std::array<obs::Counter*, 3> shards_{}, nodes_{}, edges_{};
};

// --- prefix-extension detection ---------------------------------------------

/// True when `next` is `prev` plus zero or more appended transactions
/// (attribute- and op-exact on the shared prefix). Two passes: a cheap
/// prescan over ids / sessions / sites / timestamps / op counts first, so the
/// op-vector contents — the expensive part, O(ops) each — are compared only
/// when every cheap field of the whole prefix already matches. `skipped` is
/// incremented by the number of per-transaction op comparisons the prescan
/// avoided (transactions before the first cheap mismatch, which the fused
/// single-pass loop would have deep-compared on its way there).
bool extends_prefix(const TransactionSet& prev, const TransactionSet& next,
                    std::uint64_t& skipped) {
  if (next.size() < prev.size()) return false;
  for (std::size_t i = 0; i < prev.size(); ++i) {
    const Transaction& a = prev.at(i);
    const Transaction& b = next.at(i);
    if (a.id() != b.id() || a.session() != b.session() || a.site() != b.site() ||
        a.start_ts() != b.start_ts() || a.commit_ts() != b.commit_ts() ||
        a.ops().size() != b.ops().size()) {
      skipped += i;
      return false;
    }
  }
  for (std::size_t i = 0; i < prev.size(); ++i) {
    if (prev.at(i).ops() != next.at(i).ops()) return false;
  }
  return true;
}

// --- the scheduler ----------------------------------------------------------

struct Chain {
  std::size_t first = 0, count = 1;
  SizeClass cls = SizeClass::kTiny;
};

/// One pool task: a run of consecutive chains (several when tiny, one
/// otherwise), all of the same size class.
struct Shard {
  std::size_t first_chain = 0, chain_count = 1;
  SizeClass cls = SizeClass::kTiny;
};

/// What a shard task reports into the MPMC result queue when it finishes.
/// Results themselves are written straight into the caller's result vector
/// (disjoint index ranges — no coordination needed); the record carries the
/// per-class effort tallies and any exception, so the drain loop can account
/// and rethrow without a pool-wide barrier.
struct ShardDone {
  std::size_t shard = 0;
  SizeClass cls = SizeClass::kTiny;
  std::uint64_t items = 0;  // results written before any failure
  std::uint64_t nodes = 0, edges = 0;
  std::exception_ptr error;
};

}  // namespace

std::size_t CheckOptions::resolved_threads() const {
  return threads == 0 ? ThreadPool::default_threads() : threads;
}

namespace {

/// Shared scheduler body. `policy == nullptr` is the global-level question at
/// `level` — the original code path, byte for byte. A non-null (genuinely
/// mixed) policy is resolved against each history's own compilation inside
/// the worker, so annotations and overrides bind per item; `level` then only
/// seeds the size-class heuristic (scheduling, never verdicts).
std::vector<CheckResult> check_batch_impl(ct::IsolationLevel level,
                                          const ct::LevelPolicy* policy,
                                          std::span<const BatchItem> items,
                                          const CheckOptions& opts) {
  BatchMetrics& metrics = BatchMetrics::get();
  obs::TraceSpan span("check.batch");
  std::vector<CheckResult> results(items.size());

  // Group consecutive items into maximal prefix-extension chains and class
  // each by its largest history (the last item: extension is append-only).
  std::vector<Chain> chains;
  std::uint64_t prescan_skips = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!chains.empty()) {
      const Chain& c = chains.back();
      const TransactionSet& prev = *items[c.first + c.count - 1].txns;
      if (!prev.empty() && extends_prefix(prev, *items[i].txns, prescan_skips)) {
        ++chains.back().count;
        chains.back().cls = class_of(level, opts, items[i].txns->size());
        continue;
      }
    }
    chains.push_back({i, 1, class_of(level, opts, items[i].txns->size())});
  }

  // Pack chains into shard tasks: runs of up to kTinyPack consecutive tiny
  // chains fuse into one task; medium and large chains get their own.
  std::vector<Shard> shards;
  for (std::size_t ci = 0; ci < chains.size(); ++ci) {
    if (!shards.empty() && shards.back().cls == SizeClass::kTiny &&
        chains[ci].cls == SizeClass::kTiny &&
        shards.back().chain_count < kTinyPack &&
        shards.back().first_chain + shards.back().chain_count == ci) {
      ++shards.back().chain_count;
      continue;
    }
    shards.push_back({ci, 1, chains[ci].cls});
  }

  if (obs::enabled()) {
    metrics.items_total.inc(items.size());
    metrics.chains_total.inc(chains.size());
    metrics.prescan_skips_total.inc(prescan_skips);
    for (const Shard& s : shards) metrics.shard_total(s.cls).inc();
  }
  span.field("level", ct::name_of(level))
      .field("items", static_cast<std::uint64_t>(items.size()))
      .field("chains", static_cast<std::uint64_t>(chains.size()))
      .field("shards", static_cast<std::uint64_t>(shards.size()))
      .field("threads", static_cast<std::uint64_t>(opts.resolved_threads()));

  // Run every chain of one shard, writing results[i] in place and tallying
  // the shard's effort. Searches inside tiny/medium shards run with
  // threads = 1 (bit-for-bit the lone sequential check); large shards use the
  // branch-parallel exhaustive engine, whose determinism contract keeps the
  // verdict equal to the sequential one.
  const std::size_t threads = opts.resolved_threads();
  auto run_shard = [&](const Shard& shard, ShardDone& done) {
    for (std::size_t sc = 0; sc < shard.chain_count; ++sc) {
      const Chain& chain = chains[shard.first_chain + sc];
      auto local_opts = [&](std::size_t item) {
        CheckOptions local = opts;
        local.threads =
            (shard.cls == SizeClass::kLarge && threads > 1) ? threads : 1;
        if (items[item].version_order != nullptr) {
          local.version_order = items[item].version_order;
        }
        return local;
      };
      auto account = [&](const CheckResult& r) {
        ++done.items;
        done.nodes += r.nodes_explored;
        done.edges += r.edges_visited;
      };
      auto run_check = [&](const model::CompiledHistory& ch, const CheckOptions& o) {
        return policy != nullptr ? check(policy->resolve(ch), ch, o)
                                 : check(level, ch, o);
      };
      if (chain.count == 1) {
        const std::size_t i = chain.first;
        // Compile once per history, in the worker: every engine the
        // dispatcher may try (graph, exhaustive, hierarchy inference)
        // shares this one compiled form instead of re-interning.
        const model::CompiledHistory ch(*items[i].txns);
        results[i] = run_check(ch, local_opts(i));
        account(results[i]);
        continue;
      }
      // Prefix chain: grow one compilation across the run, appending only
      // each item's new suffix as a CompiledDelta.
      model::CompiledHistory ch;
      std::size_t compiled = 0;
      for (std::size_t j = 0; j < chain.count; ++j) {
        const std::size_t i = chain.first + j;
        const TransactionSet& hist = *items[i].txns;
        std::vector<Transaction> block;
        block.reserve(hist.size() - compiled);
        for (std::size_t t = compiled; t < hist.size(); ++t) {
          block.push_back(hist.at(t));
        }
        if (!block.empty()) ch.extend(block);
        compiled = hist.size();
        results[i] = run_check(ch, local_opts(i));
        account(results[i]);
      }
    }
  };

  auto settle = [&](const ShardDone& done) {
    if (obs::enabled()) {
      metrics.results_total.inc(done.items);
      metrics.nodes_total(done.cls).inc(done.nodes);
      metrics.edges_total(done.cls).inc(done.edges);
    }
  };

  if (threads == 1 || shards.size() <= 1) {
    // Sequential path: no pool, no queue — identical to the plain loop.
    for (const Shard& shard : shards) {
      ShardDone done;
      done.cls = shard.cls;
      run_shard(shard, done);
      settle(done);
    }
    return results;
  }

  // Parallel path: one pool task per shard, each pushing its completion
  // record into a bounded MPMC queue. The queue is sized to the shard count,
  // so pushes never block; the drain loop below consumes exactly one record
  // per shard as they finish. A task that throws still pushes its record
  // (with the exception attached) — the drain can therefore never deadlock,
  // and the first failing shard (by schedule order) is rethrown after every
  // other shard has been accounted.
  MpmcQueue<ShardDone> queue(shards.size());
  ThreadPool pool(std::min(threads, shards.size()));
  for (std::size_t si = 0; si < shards.size(); ++si) {
    pool.submit([&, si] {
      ShardDone done;
      done.shard = si;
      done.cls = shards[si].cls;
      try {
        run_shard(shards[si], done);
      } catch (...) {
        done.error = std::current_exception();
      }
      queue.push(std::move(done));
    });
  }

  std::exception_ptr first_error;
  std::size_t first_error_shard = shards.size();
  for (std::size_t drained = 0; drained < shards.size(); ++drained) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardDone done = queue.pop();
    if (obs::enabled()) {
      metrics.drain_seconds.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    settle(done);
    if (done.error && done.shard < first_error_shard) {
      first_error = done.error;
      first_error_shard = done.shard;
    }
  }
  pool.wait();  // all records drained ⇒ returns immediately; keeps pool tidy
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts) {
  return check_batch_impl(level, nullptr, items, opts);
}

std::vector<CheckResult> check_batch(ct::IsolationLevel level,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts) {
  std::vector<BatchItem> items(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) items[i].txns = &histories[i];
  return check_batch(level, std::span<const BatchItem>(items), opts);
}

std::vector<CheckResult> check_batch(const ct::LevelPolicy& policy,
                                     std::span<const BatchItem> items,
                                     const CheckOptions& opts) {
  // A trivially uniform policy asks the global-level question — delegate so
  // the scheduler takes the exact original path (bit-identical results).
  if (policy.is_trivially_uniform()) {
    return check_batch(policy.fallback, items, opts);
  }
  return check_batch_impl(policy.fallback, &policy, items, opts);
}

std::vector<CheckResult> check_batch(const ct::LevelPolicy& policy,
                                     std::span<const model::TransactionSet> histories,
                                     const CheckOptions& opts) {
  std::vector<BatchItem> items(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) items[i].txns = &histories[i];
  return check_batch(policy, std::span<const BatchItem>(items), opts);
}

std::vector<CheckResult> check_incremental(ct::IsolationLevel level,
                                           std::span<const model::TransactionSet> blocks,
                                           const CheckOptions& opts) {
  obs::TraceSpan span("check.incremental");
  span.field("level", ct::name_of(level))
      .field("blocks", static_cast<std::uint64_t>(blocks.size()));
  std::vector<CheckResult> results(blocks.size());
  model::CompiledHistory ch;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const TransactionSet& block = blocks[i];
    std::vector<Transaction> txns;
    txns.reserve(block.size());
    for (std::size_t t = 0; t < block.size(); ++t) txns.push_back(block.at(t));
    if (!txns.empty()) ch.extend(txns);
    results[i] = check(level, ch, opts);
  }
  return results;
}

std::vector<CheckResult> check_incremental(const ct::LevelPolicy& policy,
                                           std::span<const model::TransactionSet> blocks,
                                           const CheckOptions& opts) {
  if (policy.is_trivially_uniform()) {
    return check_incremental(policy.fallback, blocks, opts);
  }
  obs::TraceSpan span("check.incremental");
  span.field("blocks", static_cast<std::uint64_t>(blocks.size()));
  std::vector<CheckResult> results(blocks.size());
  model::CompiledHistory ch;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const TransactionSet& block = blocks[i];
    std::vector<Transaction> txns;
    txns.reserve(block.size());
    for (std::size_t t = 0; t < block.size(); ++t) txns.push_back(block.at(t));
    if (!txns.empty()) ch.extend(txns);
    // resolve_prefix: an override naming a transaction in a later block is
    // simply not bound yet — the stream shape makes strict resolution wrong.
    results[i] = check(policy.resolve_prefix(ch), ch, opts);
  }
  return results;
}

}  // namespace crooks::checker
