# Empty dependencies file for crooks_model.
# This may be replaced when dependencies are built.
