#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"

namespace crooks {
namespace {

TEST(Ids, StrongTypesCompare) {
  EXPECT_EQ(TxnId{7}, TxnId{7});
  EXPECT_NE(TxnId{7}, TxnId{8});
  EXPECT_LT(TxnId{7}, TxnId{8});
  EXPECT_EQ(kInitTxn, TxnId{0});
  EXPECT_EQ(Key{3}, Key{3});
  EXPECT_LT(Key{2}, Key{3});
}

TEST(Ids, Hashable) {
  std::unordered_set<TxnId> s{TxnId{1}, TxnId{2}, TxnId{1}};
  EXPECT_EQ(s.size(), 2u);
  std::unordered_set<Key> ks{Key{1}, Key{2}};
  EXPECT_TRUE(ks.contains(Key{2}));
}

TEST(Ids, ToString) {
  EXPECT_EQ(to_string(TxnId{42}), "T42");
  EXPECT_EQ(to_string(Key{9}), "k9");
  EXPECT_EQ(to_string(kNoSession), "s-");
  EXPECT_EQ(to_string(SessionId{1}), "s1");
}

TEST(Interval, EmptyByDefault) {
  StateInterval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_FALSE(iv.contains(0));
}

TEST(Interval, ContainsEndpoints) {
  StateInterval iv{2, 5};
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(1));
  EXPECT_FALSE(iv.contains(6));
}

TEST(Interval, Intersect) {
  StateInterval a{0, 5}, b{3, 9};
  EXPECT_EQ(a.intersect(b), (StateInterval{3, 5}));
  EXPECT_EQ(b.intersect(a), (StateInterval{3, 5}));
  StateInterval c{6, 9};
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Interval, SingletonIntersection) {
  StateInterval a{0, 3}, b{3, 7};
  const StateInterval i = a.intersect(b);
  EXPECT_FALSE(i.empty());
  EXPECT_EQ(i, (StateInterval{3, 3}));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a() != b());
  EXPECT_TRUE(differ);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BelowRoughlyUniform) {
  Rng r(99);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.below(4)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, SplitIndependent) {
  Rng a(5);
  Rng b = a.split();
  EXPECT_NE(a(), b());
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  b.reset(64);
  EXPECT_FALSE(b.test(64));
}

TEST(Bitset, CountAndAny) {
  DynamicBitset b(100);
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
  b.set(3);
  b.set(77);
  EXPECT_TRUE(b.any());
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, OrWith) {
  DynamicBitset a(70), b(70);
  a.set(1);
  b.set(65);
  a.or_with(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(65));
  EXPECT_FALSE(b.test(1));
}

TEST(Bitset, ForEachInOrder) {
  DynamicBitset b(200);
  std::set<std::size_t> expect{0, 63, 64, 127, 199};
  for (std::size_t i : expect) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expect.begin(), expect.end()));
}

}  // namespace
}  // namespace crooks
