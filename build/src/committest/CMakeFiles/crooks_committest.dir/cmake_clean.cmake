file(REMOVE_RECURSE
  "CMakeFiles/crooks_committest.dir/commit_test.cpp.o"
  "CMakeFiles/crooks_committest.dir/commit_test.cpp.o.d"
  "CMakeFiles/crooks_committest.dir/session_guarantees.cpp.o"
  "CMakeFiles/crooks_committest.dir/session_guarantees.cpp.o.d"
  "libcrooks_committest.a"
  "libcrooks_committest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crooks_committest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
