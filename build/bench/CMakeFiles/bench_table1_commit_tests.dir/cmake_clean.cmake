file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_commit_tests.dir/bench_table1_commit_tests.cpp.o"
  "CMakeFiles/bench_table1_commit_tests.dir/bench_table1_commit_tests.cpp.o.d"
  "bench_table1_commit_tests"
  "bench_table1_commit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_commit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
