// Direct single-pass checkers for the weak levels: RC, RA and PSI.
//
// The paper's commit tests for these levels never need a search over commit
// orders — each clause only constrains *which transactions must precede
// which*. The direct engine extracts those forced-precedence constraints in
// one sweep over the compiled SoA arrays, decides satisfiability by cycle
// detection, and emits a witness straight from a topological order. No DSG,
// no prefix-search tree, no per-node hash probes: O(|ops| + |edges|).
//
// Per level:
//
//  * RC — CT_RC is PREREAD alone. A kReadNever op (phantom, unknown writer,
//    writer-misses-key, malformed internal) fails PREREAD in every execution
//    → unsatisfiable. Otherwise each external read forces its writer before
//    its reader (a wr edge), and a version order forces each key's member
//    installers into a chain. Any topological order of wr ∪ chain edges
//    passes PREREAD at every placement (each read's writer is placed, and a
//    placed version's interval is never empty) and is version-order
//    admissible (the chain edges reproduce the cursor semantics), so:
//    satisfiable ⟺ the edge graph is acyclic. Complete.
//
//  * RA — CT_RC plus the fragmented-read test. For a transaction T with an
//    external read from w1 and another (non-internal) read of key k where w1
//    also writes k: if that second read observes the initial version the
//    fracture sf_i ≥ 1 > 0 = sf_j holds in every execution → unsatisfiable;
//    if it observes w2 ≠ w1 the test forces pos(w1) < pos(w2) — one extra
//    edge. The forced edges are exactly necessary and sufficient, so again:
//    satisfiable ⟺ acyclic. Complete.
//
//  * PSI — CT_RC plus CAUS-VIS. Precedence can *cascade* (PREC is a
//    transitive closure over reads and conflicting writes), so the engine
//    runs a saturation fixpoint: compute PREC_forced(T) — the transactions
//    provably in PREC_e(T) for every execution e (read-from writers,
//    conflicting writers already forced before T, and their forced
//    predecessors) — and for each read of key k, any wd ∈ PREC_forced(T)
//    writing k must install before the version read (else wd's write is
//    invisible in T's read state → CAUS-VIS fails), adding the edge
//    wd → version or refuting outright when the version is the initial one.
//    A cycle or a forced-before-initial contradiction is a sound refutation.
//    When the fixpoint stabilizes the topological order is only a
//    *candidate* (saturation is not complete for PSI — see the long-fork
//    gadget in tests/direct_engine_test.cpp), so it is verified against the
//    canonical commit test; on failure the engine falls back to a bounded
//    exhaustive search below opts.exhaustive_threshold and reports kUnknown
//    above it (check()'s dispatch then falls through to the complete
//    engines). PREC_forced materializes two n-bit sets per transaction, so
//    PSI is additionally gated to kDirectPsiMaxTxns.
//
// Witnesses for RC/RA are correct by construction (the proofs above are
// exercised by the three-way differential suite, which re-verifies every
// witness); the PSI witness is always runtime-verified. Refutations attach
// the same explain_refutation diagnosis as the other engines.
#include <algorithm>
#include <queue>
#include <span>
#include <utility>

#include "checker/checker.hpp"
#include "checker/engine_obs.hpp"
#include "common/bitset.hpp"
#include "model/compiled.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

namespace {

using ct::IsolationLevel;
using model::CompiledHistory;
using model::KeyIdx;
using model::OpClass;
using model::TxnIdx;

/// PSI saturation materializes two n-bit sets per transaction (~n²/4 bytes);
/// above this size the engine answers kUnknown and dispatch falls through.
constexpr std::size_t kDirectPsiMaxTxns = 16384;

/// Each saturation round adds at least one edge or stops, so the fixpoint
/// terminates on its own; the cap bounds the adversarial worst case. A capped
/// run still only *proposes* a candidate, which is verified before use.
constexpr std::size_t kMaxSaturationRounds = 64;

struct DirectMetrics {
  obs::Counter& checks;
  obs::Counter& fallbacks;

  static DirectMetrics& get() {
    static DirectMetrics m{
        obs::Registry::global().counter(
            "crooks_direct_checks_total",
            "Checks handled by the direct single-pass engine"),
        obs::Registry::global().counter(
            "crooks_direct_fallbacks_total",
            "Direct PSI checks resolved by the bounded exhaustive fallback")};
    return m;
  }
};

/// Non-internal external read of a member writer (same predicate as the
/// exhaustive engine's fragment/causal passes).
bool external_read(std::uint8_t flags) {
  return model::op_class_of(flags) == OpClass::kReadExternal &&
         (flags & model::kOpPositionalInternal) == 0;
}

class DirectCheck {
 public:
  DirectCheck(IsolationLevel level, const CompiledHistory& ch, const CheckOptions& opts)
      : level_(level), ch_(&ch), opts_(&opts), n_(ch.size()) {}

  /// Mixed-level form: every level present must be direct-eligible. The
  /// shared PREREAD/wr/version-order constraints apply to every transaction;
  /// the RA fragment pass and the PSI forcing rounds gate per transaction on
  /// its own level. Uniform assignments are expected to go through the level
  /// ctor (check_direct delegates), but behave identically here.
  DirectCheck(const ct::LevelAssignment& levels, const CompiledHistory& ch,
              const CheckOptions& opts)
      : DirectCheck(levels.fallback(), ch, opts) {
    if (!levels.is_uniform()) levels_ = &levels;
  }

  CheckResult run() {
    init_rank();
    // Optimistic first pass for RC/RA: clean histories force only edges
    // that go forward in timestamp rank, and then ts_order itself is the
    // witness — so the pass records nothing, it only *tests* each edge as
    // it is forced. Materializing ~2n edges just to confirm they all point
    // forward would double the check's memory traffic. Only when a backward
    // edge shows up does the check restart with the edge list (and Kahn's
    // queue) for real; adversarial histories pay the sweep twice, clean
    // ones never allocate an edge. PSI always materializes — its saturation
    // rounds walk the CSR adjacency regardless.
    materialize_ = any_level(IsolationLevel::kPSI);
    if (materialize_) edge_list_.reserve(2 * n_);
    if (auto r = run_pass()) return *std::move(r);
    backward_seen_ = false;
    edge_count_ = 0;
    materialize_ = true;
    edge_list_.reserve(2 * n_);
    return *run_pass();  // with edges materialized the pass always decides
  }

  std::uint64_t nodes() const { return nodes_; }
  std::uint64_t edges() const { return edge_count_; }

 private:
  /// The level a transaction's commit test runs at.
  IsolationLevel level_of(TxnIdx d) const {
    return levels_ != nullptr ? levels_->of(d) : level_;
  }

  /// Is any transaction assigned this level?
  bool any_level(IsolationLevel l) const {
    return levels_ != nullptr ? levels_->present(l) : level_ == l;
  }

  std::string level_desc() const {
    return levels_ != nullptr ? levels_->describe()
                              : std::string(ct::name_of(level_));
  }
  // Edges live in one flat list; the CSR adjacency is materialized on demand
  // (and re-materialized after PSI forcing rounds grow the list). On the
  // clean-history fast path nothing ever builds it — one flat sweep decides
  // the topology, and per-node adjacency vectors would be n mallocs paid on
  // every check.
  std::optional<CheckResult> run_pass() {
    if (auto r = preread_and_wr()) return r;
    if (auto r = version_order_chains()) return r;
    if (any_level(IsolationLevel::kReadAtomic)) {
      if (auto r = ra_pair_edges()) return r;
    }
    if (any_level(IsolationLevel::kPSI)) return run_psi();
    if (!materialize_) {
      if (backward_seen_) return std::nullopt;  // needs Kahn on real edges
      // Every forced edge goes forward in timestamp rank, so ts_order is a
      // topological order of the (never materialized) edge graph.
      nodes_ += n_;
      return witness(ch_->ts_order(),
                     "witness from one topological pass over the "
                     "forced-precedence edges (correct by construction)");
    }
    std::vector<TxnIdx> order = topo();
    if (order.size() != n_) return cyclic();
    return witness(std::move(order),
                   "witness from one topological pass over the forced-precedence "
                   "edges (correct by construction)");
  }

  void add_edge(TxnIdx from, TxnIdx to) {
    ++edge_count_;
    if (!materialize_) {
      if (ts_identity_ ? from >= to : rank_[from] >= rank_[to]) {
        backward_seen_ = true;
      }
      return;
    }
    edge_list_.emplace_back(from, to);
    csr_built_ = false;
  }

  std::span<const TxnIdx> succ(TxnIdx u) const {
    return std::span<const TxnIdx>(row_dst_.data() + row_off_[u],
                                   row_off_[u + 1] - row_off_[u]);
  }

  void ensure_csr() {
    if (csr_built_) return;
    row_off_.assign(n_ + 1, 0);
    for (const auto& [from, to] : edge_list_) ++row_off_[from + 1];
    for (std::size_t i = 1; i <= n_; ++i) row_off_[i] += row_off_[i - 1];
    row_dst_.resize(edge_list_.size());
    cursor_.assign(row_off_.begin(), row_off_.end() - 1);
    for (const auto& [from, to] : edge_list_) row_dst_[cursor_[from]++] = to;
    csr_built_ = true;
  }

  CheckResult unsat(std::string why) const {
    return {Outcome::kUnsatisfiable, std::nullopt, std::move(why), nodes_};
  }

  CheckResult cyclic() const {
    return unsat("the forced-precedence constraints are cyclic: no execution "
                 "satisfies " +
                 level_desc());
  }

  /// rank_ is the inverse permutation of ts_order; ts_identity_ says the
  /// dense order already is commit order (every history compiled from a
  /// sorted stream), in which case edge direction tests need no rank loads.
  void init_rank() {
    rank_.resize(n_);
    const std::vector<TxnIdx>& tso = ch_->ts_order();
    ts_identity_ = true;
    for (std::size_t i = 0; i < tso.size(); ++i) {
      rank_[tso[i]] = static_cast<std::uint32_t>(i);
      if (tso[i] != i) ts_identity_ = false;
    }
  }

  CheckResult witness(std::vector<TxnIdx> order, std::string how) const {
    return {Outcome::kSatisfiable,
            model::Execution::from_dense(ch_->txns(), std::move(order),
                                         ch_->ids()),
            std::move(how), nodes_};
  }

  /// PREREAD feasibility (shared by all three levels) + the wr edges: every
  /// external read forces its writer before its reader.
  std::optional<CheckResult> preread_and_wr() {
    for (TxnIdx d = 0; d < n_; ++d) {
      const model::OpsView ops = ch_->ops(d);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        switch (ops.cls(i)) {
          case OpClass::kWrite:
          case OpClass::kReadInternal:
          case OpClass::kReadInitial:
            break;
          case OpClass::kReadNever:
            return unsat("PREREAD fails in every execution: " +
                         crooks::to_string(ch_->id_of(d)) +
                         " has a read no execution can satisfy");
          case OpClass::kReadExternal:
            add_edge(ops.writer(i), d);
            break;
        }
      }
    }
    return std::nullopt;
  }

  /// Version-order restriction, replicating the prefix-search cursor
  /// semantics exactly: the i-th install of a restricted key must be the
  /// i-th entry of its sequence. Hence the first |writers| entries must be
  /// exactly the key's member writers, once each (any other shape leaves
  /// some writer permanently inadmissible → unsatisfiable), and those
  /// entries become a precedence chain. Any topological order extending the
  /// chains is version-order admissible.
  std::optional<CheckResult> version_order_chains() {
    if (opts_->version_order == nullptr || opts_->version_order->empty()) {
      return std::nullopt;
    }

    // Fast path: when every restricted key's sequence starts with exactly its
    // member writers in dense (commit) order — the shape every store audit
    // produces — one sequential sweep validates the whole restriction and the
    // chains are the writers_of() spans themselves. No TxnId is ever hashed;
    // the general path below pays one hash probe per entry, which at 10^5+
    // transactions is a cache miss per probe and dominates the entire check.
    {
      std::vector<const std::vector<TxnId>*> vo_of(ch_->key_count(), nullptr);
      for (const auto& [key, installers] : *opts_->version_order) {
        const KeyIdx k = ch_->keys().find(key);
        if (k != model::kNoKeyIdx) vo_of[k] = &installers;
      }
      std::vector<std::size_t> cursor(ch_->key_count(), 0);
      bool fast_ok = true;
      for (TxnIdx d = 0; d < n_ && fast_ok; ++d) {
        const TxnId id = ch_->id_of(d);
        for (KeyIdx k : ch_->write_keys(d)) {
          const std::vector<TxnId>* inst = vo_of[k];
          if (inst == nullptr) continue;  // key unrestricted
          if (cursor[k] >= inst->size() || (*inst)[cursor[k]] != id) {
            fast_ok = false;
            break;
          }
          ++cursor[k];
        }
      }
      if (fast_ok) {
        for (KeyIdx k = 0; k < ch_->key_count(); ++k) {
          if (vo_of[k] == nullptr) continue;
          const std::span<const TxnIdx> writers = ch_->writers_of(k);
          for (std::size_t i = 0; i + 1 < writers.size(); ++i) {
            add_edge(writers[i], writers[i + 1]);
          }
        }
        return std::nullopt;
      }
    }

    std::vector<TxnIdx> seq;
    // Duplicate detection must stay linear per entry: `taken` marks dense
    // indices consumed by the current key's prefix (cleared between keys by
    // un-setting only what was set — the vector itself is allocated once).
    std::vector<char> taken(n_, 0);
    for (const auto& [key, installers] : *opts_->version_order) {
      const KeyIdx k = ch_->keys().find(key);
      if (k == model::kNoKeyIdx) continue;  // key never touched by the set
      seq.clear();
      for (TxnId id : installers) {
        const std::size_t d = ch_->txns().dense_index_if(id);
        if (d != model::TransactionSet::npos) {
          seq.push_back(static_cast<TxnIdx>(d));
        }
      }
      const std::span<const TxnIdx> writers = ch_->writers_of(k);
      const std::size_t m = writers.size();
      bool ok = seq.size() >= m;
      for (std::size_t i = 0; ok && i < m; ++i) {
        ok = ch_->writes_key(seq[i], k) && !taken[seq[i]];
        if (ok) taken[seq[i]] = 1;
      }
      for (std::size_t i = 0; i < m; ++i) taken[seq[i]] = 0;
      if (!ok) {
        return unsat("the version order for key " + crooks::to_string(key) +
                     " admits no placement of its writers");
      }
      for (std::size_t i = 0; i + 1 < m; ++i) add_edge(seq[i], seq[i + 1]);
    }
    return std::nullopt;
  }

  /// RA: per-transaction fragmented-read constraints (see header comment).
  /// Runs under PREREAD, so every surviving non-write non-internal op is an
  /// external or initial read — the same filters as the exhaustive engine's
  /// fractured() pass. Under a mixed assignment only RA-level transactions
  /// have the fragment clause; PSI-level ones get the equivalent constraints
  /// (with CAUS-VIS-worded refutations) from the saturation rounds.
  std::optional<CheckResult> ra_pair_edges() {
    for (TxnIdx d = 0; d < n_; ++d) {
      if (level_of(d) != IsolationLevel::kReadAtomic) continue;
      const model::OpsView ops = ch_->ops(d);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!external_read(ops.flags(i))) continue;
        const TxnIdx w1 = ops.writer(i);
        for (std::size_t j = 0; j < ops.size(); ++j) {
          // j == i is vacuous: PREREAD already refuted writer-misses-key
          // reads, so w1 writes ops.key(i) and the pair collapses to
          // w2 == w1. Skipping it keeps single-read transactions free of
          // the random write-mask probe.
          if (j == i) continue;
          const std::uint8_t m2 = ops.flags(j);
          if ((m2 & model::kOpWrite) != 0 ||
              (m2 & model::kOpPositionalInternal) != 0) {
            continue;
          }
          if (!ch_->writes_key(w1, ops.key(j))) continue;
          if ((m2 & model::kOpInitWriter) != 0) {
            return unsat("fractured read in every execution: " +
                         crooks::to_string(ch_->id_of(d)) + " observes " +
                         crooks::to_string(ch_->id_of(w1)) +
                         " but reads the initial version of a key it writes");
          }
          const TxnIdx w2 = ops.writer(j);
          if (w2 != w1) add_edge(w1, w2);
        }
      }
    }
    return std::nullopt;
  }

  /// Kahn topological sort, smallest ts_order rank first — deterministic,
  /// and the witness follows commit-timestamp order wherever the constraints
  /// allow. Result shorter than n_ ⟺ the edge graph is cyclic. Indegrees
  /// are derived from the edge list only on the fallback — the forward fast
  /// path never pays the random per-edge increments or the O(n) array.
  std::vector<TxnIdx> topo() {
    // Fast path: when every forced edge goes forward in timestamp rank, the
    // smallest-rank-first Kahn below provably emits ts_order itself — the
    // smallest-rank node can have no incoming edge (it would have to come
    // from a larger rank), and inductively ranks pop in sequence. One edge
    // sweep replaces the heap, which is the only superlinear term on clean
    // histories.
    bool forward = true;
    if (ts_identity_) {
      // Dense order is commit order (every history compiled from a sorted
      // stream): rank_[x] == x, so the sweep needs no rank loads at all.
      for (const auto& [u, v] : edge_list_) {
        if (u >= v) {
          forward = false;
          break;
        }
      }
    } else {
      for (const auto& [u, v] : edge_list_) {
        if (rank_[u] >= rank_[v]) {
          forward = false;
          break;
        }
      }
    }
    if (forward) {
      nodes_ += n_;
      return ch_->ts_order();
    }

    ensure_csr();
    std::vector<std::uint32_t> indeg(n_, 0);
    for (const auto& [u, v] : edge_list_) ++indeg[v];
    auto later = [this](TxnIdx a, TxnIdx b) { return rank_[a] > rank_[b]; };
    std::priority_queue<TxnIdx, std::vector<TxnIdx>, decltype(later)> ready(later);
    for (TxnIdx d = 0; d < n_; ++d) {
      if (indeg[d] == 0) ready.push(d);
    }
    std::vector<TxnIdx> order;
    order.reserve(n_);
    while (!ready.empty()) {
      const TxnIdx u = ready.top();
      ready.pop();
      ++nodes_;
      order.push_back(u);
      for (TxnIdx v : succ(u)) {
        if (--indeg[v] == 0) ready.push(v);
      }
    }
    return order;
  }

  // --- PSI saturation -------------------------------------------------------

  CheckResult run_psi() {
    if (n_ > kDirectPsiMaxTxns) {
      return {Outcome::kUnknown, std::nullopt,
              "history too large for the direct PSI saturation (n > " +
                  std::to_string(kDirectPsiMaxTxns) + ")",
              nodes_};
    }

    std::vector<TxnIdx> order;
    std::vector<DynamicBitset> ppred;  // transitive P-predecessors
    std::vector<DynamicBitset> fpred;  // PREC_forced: guaranteed PREC members
    for (std::size_t round = 0; round < kMaxSaturationRounds; ++round) {
      order = topo();
      if (order.size() != n_) return cyclic();

      // Transitive closure of the precedence edges, pushed along topo order.
      ensure_csr();
      ppred.assign(n_, DynamicBitset(n_));
      for (TxnIdx u : order) {
        for (TxnIdx v : succ(u)) {
          ppred[v].or_with(ppred[u]);
          ppred[v].set(u);
        }
      }

      // PREC_forced(T): transactions in PREC_e(T) for *every* execution e —
      // read-from writers, writers of conflicting keys already forced before
      // T (they sit in T's timelines at placement), and, transitively, their
      // own forced PREC (absorbed when they are). All such edges point
      // topo-forward, so one pull pass in topo order closes the set.
      fpred.assign(n_, DynamicBitset(n_));
      for (TxnIdx v : order) {
        DynamicBitset& fp = fpred[v];
        const model::OpsView ops = ch_->ops(v);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          if (!external_read(ops.flags(i))) continue;
          const TxnIdx w = ops.writer(i);
          fp.set(w);
          fp.or_with(fpred[w]);
        }
        for (KeyIdx k : ch_->write_keys(v)) {
          for (TxnIdx u : ch_->writers_of(k)) {
            if (u != v && ppred[v].test(u)) {
              fp.set(u);
              fp.or_with(fpred[u]);
            }
          }
        }
      }

      // CAUS-VIS forcing: a forced PREC member writing a read key must
      // install before the version read, in every execution. Only PSI-level
      // transactions have the clause; the fpred/ppred closures above still
      // span every transaction, since causality flows through any of them.
      bool changed = false;
      for (TxnIdx d = 0; d < n_; ++d) {
        if (level_of(d) != IsolationLevel::kPSI) continue;
        const model::OpsView ops = ch_->ops(d);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const std::uint8_t m = ops.flags(i);
          if ((m & model::kOpWrite) != 0 ||
              (m & model::kOpPositionalInternal) != 0) {
            continue;
          }
          const KeyIdx k = ops.key(i);
          const bool initial = (m & model::kOpInitWriter) != 0;
          const TxnIdx wv = initial ? model::kNoTxnIdx : ops.writer(i);
          for (TxnIdx wd : ch_->writers_of(k)) {
            if (wd == d || wd == wv || !fpred[d].test(wd)) continue;
            if (initial) {
              return unsat(
                  "CAUS-VIS fails in every execution: " +
                  crooks::to_string(ch_->id_of(d)) + " must see " +
                  crooks::to_string(ch_->id_of(wd)) + "'s write to " +
                  crooks::to_string(ch_->keys().key_of(k)) +
                  " but reads the initial version");
            }
            if (ppred[wv].test(wd)) continue;  // already forced before
            if (ppred[wd].test(wv)) {
              return unsat(
                  "CAUS-VIS fails in every execution: " +
                  crooks::to_string(ch_->id_of(wd)) + " must install " +
                  crooks::to_string(ch_->keys().key_of(k)) + " before " +
                  crooks::to_string(ch_->id_of(wv)) +
                  ", which already precedes it");
            }
            add_edge(wd, wv);
            changed = true;
          }
        }
      }
      if (!changed) break;
      order.clear();  // edges grew: the order must be recomputed
    }

    if (order.empty()) {  // round cap hit with fresh edges pending
      order = topo();
      if (order.size() != n_) return cyclic();
    }

    // Saturation is sound but not complete: the stabilized order is only a
    // candidate. Verify it; fall back to the bounded complete search when it
    // fails on a small history.
    CheckResult cand =
        witness(std::move(order),
                levels_ != nullptr
                    ? "witness from the causal-precedence saturation, verified "
                      "against the per-transaction commit tests"
                    : "witness from the causal-precedence saturation, "
                      "verified against CT_PSI");
    const bool cand_ok = levels_ != nullptr
                             ? verify_witness(*levels_, *ch_, *cand.witness).ok
                             : verify_witness(level_, *ch_, *cand.witness).ok;
    if (cand_ok) return cand;

    if (n_ <= opts_->exhaustive_threshold) {
      if (obs::enabled()) DirectMetrics::get().fallbacks.inc();
      CheckResult r = levels_ != nullptr
                          ? check_exhaustive(*levels_, *ch_, *opts_)
                          : check_exhaustive(level_, *ch_, *opts_);
      r.detail = "saturation candidate failed verification; exhaustive fallback: " +
                 r.detail;
      r.nodes_explored += nodes_;
      return r;
    }
    return {Outcome::kUnknown, std::nullopt,
            "PSI saturation candidate failed verification and the history "
            "exceeds the exhaustive fallback threshold",
            nodes_};
  }

  IsolationLevel level_;
  /// Non-null iff genuinely mixed; level_of() then dispatches per transaction.
  const ct::LevelAssignment* levels_ = nullptr;
  const CompiledHistory* ch_;
  const CheckOptions* opts_;
  std::size_t n_;
  std::vector<std::pair<TxnIdx, TxnIdx>> edge_list_;  // forced-precedence edges
  std::vector<std::uint32_t> row_off_;  // CSR offsets (built on demand)
  std::vector<TxnIdx> row_dst_;         // CSR targets
  std::vector<std::uint32_t> cursor_;   // scratch for CSR fill
  bool csr_built_ = false;
  bool materialize_ = true;   // false during the optimistic RC/RA pass
  bool backward_seen_ = false;
  std::vector<std::uint32_t> rank_;  // inverse of ts_order, built lazily
  bool ts_identity_ = false;         // ts_order is the identity permutation
  std::uint64_t nodes_ = 0;          // topological pops (placements examined)
  std::uint64_t edge_count_ = 0;
};

}  // namespace

bool direct_eligible(ct::IsolationLevel level) {
  return level == IsolationLevel::kReadCommitted ||
         level == IsolationLevel::kReadAtomic || level == IsolationLevel::kPSI;
}

CheckResult check_direct(ct::IsolationLevel level, const model::CompiledHistory& ch,
                         const CheckOptions& opts) {
  if (!direct_eligible(level)) {
    return {Outcome::kUnknown, std::nullopt,
            std::string(ct::name_of(level)) +
                " has no direct single-pass decision procedure",
            0};
  }
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()),
            "empty transaction set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& latency = engine_obs::check_latency("direct");
  obs::TraceSpan span("engine.direct");
  obs::ScopedTimer timer(latency);
  DirectCheck dc(level, ch, opts);
  CheckResult result = dc.run();
  result.engine = "direct";
  result.edges_visited = dc.edges();
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(level, ch);
  }
  if (obs::enabled()) {
    DirectMetrics::get().checks.inc();
    engine_obs::checks_counter("direct", result.outcome).inc();
  }
  span.field("level", ct::name_of(level))
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("nodes", result.nodes_explored)
      .field("edges", result.edges_visited)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

CheckResult check_direct(ct::IsolationLevel level, const model::TransactionSet& txns,
                         const CheckOptions& opts) {
  if (txns.empty()) {
    return {Outcome::kSatisfiable, model::Execution::identity(txns),
            "empty transaction set", 0};
  }
  const model::CompiledHistory ch(txns);
  return check_direct(level, ch, opts);
}

bool direct_eligible(const ct::LevelAssignment& levels) {
  return levels.all_in({IsolationLevel::kReadCommitted,
                        IsolationLevel::kReadAtomic, IsolationLevel::kPSI});
}

CheckResult check_direct(const ct::LevelAssignment& levels,
                         const model::CompiledHistory& ch,
                         const CheckOptions& opts) {
  if (levels.is_uniform()) return check_direct(levels.fallback(), ch, opts);
  if (!direct_eligible(levels)) {
    return {Outcome::kUnknown, std::nullopt,
            levels.describe() +
                " mixes levels with no direct single-pass decision procedure",
            0};
  }
  if (ch.size() == 0) {
    return {Outcome::kSatisfiable, model::Execution::identity(ch.txns()),
            "empty transaction set", 0};
  }
  if (auto refused = engine_obs::refuse_retired(ch)) return *std::move(refused);
  static obs::Histogram& latency = engine_obs::check_latency("direct");
  obs::TraceSpan span("engine.direct");
  obs::ScopedTimer timer(latency);
  DirectCheck dc(levels, ch, opts);
  CheckResult result = dc.run();
  result.engine = "direct";
  result.edges_visited = dc.edges();
  if (result.unsatisfiable() && !result.diagnosis) {
    result.diagnosis = explain_refutation(levels, ch);
  }
  if (obs::enabled()) {
    DirectMetrics::get().checks.inc();
    engine_obs::checks_counter("direct", result.outcome).inc();
  }
  span.field("level", levels.describe())
      .field("n", static_cast<std::uint64_t>(ch.size()))
      .field("nodes", result.nodes_explored)
      .field("edges", result.edges_visited)
      .field("outcome", engine_obs::outcome_word(result.outcome));
  return result;
}

}  // namespace crooks::checker
