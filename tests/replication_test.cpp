// Replication simulator: PSI correctness of the simulated system, the
// Figure 5 dependency gap, and the slowdown-cascade behaviour.
#include <gtest/gtest.h>

#include "adya/phenomena.hpp"
#include "replication/simulator.hpp"

namespace crooks::repl {
namespace {

SimOptions small_options(std::uint64_t seed) {
  SimOptions o;
  o.sites = 3;
  o.keys = 200;
  o.transactions = 300;
  o.replication_delay = 30;
  o.seed = seed;
  return o;
}

TEST(Simulator, Deterministic) {
  const SimResult a = simulate(small_options(5));
  const SimResult b = simulate(small_options(5));
  ASSERT_EQ(a.txns.size(), b.txns.size());
  for (std::size_t i = 0; i < a.txns.size(); ++i) {
    EXPECT_EQ(a.txns[i].traditional_deps, b.txns[i].traditional_deps);
    EXPECT_EQ(a.txns[i].client_deps, b.txns[i].client_deps);
    EXPECT_EQ(a.txns[i].traditional_visible, b.txns[i].traditional_visible);
  }
}

TEST(Simulator, CommitsPlusAbortsCoverAllTransactions) {
  const SimOptions o = small_options(7);
  const SimResult r = simulate(o);
  EXPECT_EQ(r.committed + r.ww_aborts, o.transactions);
  EXPECT_GT(r.committed, 0u);
}

/// The simulated system's client observations must satisfy CT_PSI — the
/// commit test audits the simulator exactly as it would audit a real store.
TEST(Simulator, ObservationsSatisfyPsi) {
  const SimResult r = simulate(small_options(3));
  checker::CheckOptions opts;
  opts.version_order = &r.version_order;
  const checker::CheckResult res =
      checker::check(ct::IsolationLevel::kPSI, r.observations, opts);
  ASSERT_NE(res.outcome, checker::Outcome::kUnknown) << res.detail;
  EXPECT_TRUE(res.satisfiable()) << res.detail;
}

/// With three asynchronous sites the observations are generally NOT
/// snapshot-consistent: long forks arise, so serializability fails while
/// PSI holds (the whole point of PSI).
TEST(Simulator, AsynchronyEventuallyViolatesSerializability) {
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    SimOptions o = small_options(seed);
    o.keys = 40;  // contention makes forks likely
    const SimResult r = simulate(o);
    adya::History h = adya::from_observations(r.observations, r.version_order);
    found = adya::detect(h).g2;
  }
  EXPECT_TRUE(found);
}

TEST(Simulator, ClientDepsBoundedByFootprint) {
  const SimOptions o = small_options(11);
  const SimResult r = simulate(o);
  for (const TxnMetrics& t : r.txns) {
    EXPECT_LE(t.client_deps, o.reads_per_txn + o.writes_per_txn);
  }
}

/// Figure 5's headline: the traditional definition creates orders of
/// magnitude more dependencies than the client-centric one.
TEST(Simulator, TraditionalDepsDwarfClientDeps) {
  SimOptions o;
  o.sites = 3;
  o.keys = 10'000;
  o.transactions = 4'000;
  o.replication_delay = 600;
  o.seed = 1;
  const SimResult r = simulate(o);
  const double trad = r.mean_traditional_deps();
  const double cc = r.mean_client_deps();
  EXPECT_GT(cc, 0.0);
  EXPECT_GT(trad / cc, 20.0) << "traditional=" << trad << " client=" << cc;
}

TEST(Simulator, TraditionalDepsGrowWithReplicationLag) {
  SimOptions o = small_options(9);
  o.transactions = 2'000;
  o.keys = 5'000;
  o.replication_delay = 50;
  const double short_lag = simulate(o).mean_traditional_deps();
  o.replication_delay = 500;
  const double long_lag = simulate(o).mean_traditional_deps();
  EXPECT_GT(long_lag, short_lag * 3);
  // Client-centric deps do not care about lag.
  o.replication_delay = 50;
  const double cc_short = simulate(o).mean_client_deps();
  o.replication_delay = 500;
  const double cc_long = simulate(o).mean_client_deps();
  EXPECT_NEAR(cc_short, cc_long, 1.0);
}

/// Slowdown cascade (§5.3): a stalled partition delays *unrelated*
/// transactions under the traditional total-order discipline, but not under
/// the client-centric one.
TEST(Simulator, SlowPartitionCascadesOnlyUnderTraditionalPsi) {
  // The paper's sparse uniform workload (10k keys): client-centric
  // dependencies mostly predate the stall, so almost nothing waits.
  SimOptions o;
  o.sites = 3;
  o.keys = 10'000;
  o.transactions = 4'000;
  o.replication_delay = 20;
  o.partitions = 50;
  o.seed = 4;
  o.slowdown = Slowdown{.partition = 0, .from = 500, .until = 1500,
                        .extra_delay = 3'000};
  const SimResult r = simulate(o);

  const double trad = r.mean_unrelated_latency(/*traditional=*/true);
  const double cc = r.mean_unrelated_latency(/*traditional=*/false);
  // Unrelated transactions stay near the raw replication delay under the
  // client-centric discipline (a small tail is genuinely — transitively —
  // dependent on stalled transactions)...
  EXPECT_LT(cc, 5.0 * static_cast<double>(o.replication_delay));
  // ...but inherit the stall under the traditional one.
  EXPECT_GT(trad, 10.0 * cc) << "traditional=" << trad << " client=" << cc;
}

TEST(Simulator, EmptyMetricsAreZero) {
  SimResult empty;
  EXPECT_EQ(empty.mean_traditional_deps(), 0.0);
  EXPECT_EQ(empty.mean_client_deps(), 0.0);
  EXPECT_EQ(empty.mean_unrelated_latency(true), 0.0);
}

TEST(Simulator, SingleSiteHasNoReplicationLatency) {
  SimOptions o = small_options(1);
  o.sites = 1;
  const SimResult r = simulate(o);
  for (const TxnMetrics& t : r.txns) {
    EXPECT_EQ(t.traditional_visible, t.commit_time);
    EXPECT_EQ(t.client_visible, t.commit_time);
    EXPECT_EQ(t.traditional_deps, 0u);  // everything replicates instantly
  }
  EXPECT_EQ(r.ww_aborts, 0u);  // one site: no somewhere-concurrency
}

TEST(Simulator, SiteLocalWritesEliminateConflicts) {
  SimOptions o = small_options(6);
  o.keys = 60;  // high contention...
  o.transactions = 600;
  const std::size_t with_conflicts = simulate(o).ww_aborts;
  o.site_local_writes = true;  // ...but per-site ownership removes ww races
  EXPECT_EQ(simulate(o).ww_aborts, 0u);
  EXPECT_GT(with_conflicts, 0u);
}

TEST(Simulator, ClientVisibilityNeverExceedsTraditional) {
  SimOptions o = small_options(8);
  o.transactions = 800;
  o.slowdown = Slowdown{.partition = 0, .from = 100, .until = 400, .extra_delay = 500};
  const SimResult r = simulate(o);
  for (const TxnMetrics& t : r.txns) {
    EXPECT_LE(t.client_visible, t.traditional_visible);
    EXPECT_GE(t.client_visible, t.commit_time);
  }
}

TEST(Simulator, NoSlowdownMeansDisciplinesPerformAlike) {
  SimOptions o = small_options(2);
  o.transactions = 1'000;
  o.keys = 2'000;
  const SimResult r = simulate(o);
  const double trad = r.mean_unrelated_latency(true);
  const double cc = r.mean_unrelated_latency(false);
  EXPECT_GE(trad, cc);              // total order can only add waiting
  EXPECT_LT(trad, cc * 1.5 + 10);   // but without stalls it stays close
}

}  // namespace
}  // namespace crooks::repl
