#include "forensics/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "adya/graph.hpp"

namespace crooks::forensics {

namespace {

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case adya::kWW: return "ww";
    case adya::kWR: return "wr";
    case adya::kRW: return "rw";
    case adya::kSD: return "sd";
    case adya::kRT: return "rt";
  }
  return "??";
}

/// Serialize `g` under permutation `perm` (perm[i] = new index of node i).
/// Compact but byte-stable; used both for the canonical search comparisons
/// and as the final canonical code.
std::string serialize_under(const ShapeGraph& g,
                            const std::vector<std::uint8_t>& perm) {
  const std::size_t n = g.size();
  std::string out;
  out.reserve(2 + n + g.edges.size() * 3);
  out.push_back(static_cast<char>(n));
  std::vector<std::uint8_t> roles(n);
  for (std::size_t i = 0; i < n; ++i) roles[perm[i]] = g.roles[i];
  out.append(roles.begin(), roles.end());
  std::vector<ShapeEdge> edges;
  edges.reserve(g.edges.size());
  for (const ShapeEdge& e : g.edges) {
    edges.push_back({perm[e.from], perm[e.to], e.kind});
  }
  std::sort(edges.begin(), edges.end());
  for (const ShapeEdge& e : edges) {
    out.push_back(static_cast<char>(e.from));
    out.push_back(static_cast<char>(e.to));
    out.push_back(static_cast<char>(e.kind));
  }
  return out;
}

/// One round of 1-dimensional Weisfeiler-Leman refinement: a node's new
/// color combines its old color with the sorted multiset of (direction,
/// kind, neighbor color) signatures. Colors are re-compacted to dense ids
/// each round so the loop terminates when the partition stabilizes.
std::vector<std::uint32_t> refine_colors(const ShapeGraph& g) {
  const std::size_t n = g.size();
  std::vector<std::uint32_t> color(n);
  for (std::size_t i = 0; i < n; ++i) color[i] = g.roles[i];
  for (std::size_t round = 0; round < n; ++round) {
    std::vector<std::string> sig(n);
    for (std::size_t i = 0; i < n; ++i) {
      sig[i].push_back(static_cast<char>(color[i] & 0xFF));
      sig[i].push_back(static_cast<char>((color[i] >> 8) & 0xFF));
    }
    std::vector<std::array<std::uint32_t, 3>> inc;  // (dir, kind, peer color)
    for (std::size_t i = 0; i < n; ++i) {
      inc.clear();
      for (const ShapeEdge& e : g.edges) {
        if (e.from == i) inc.push_back({0, e.kind, color[e.to]});
        if (e.to == i) inc.push_back({1, e.kind, color[e.from]});
      }
      std::sort(inc.begin(), inc.end());
      for (const auto& t : inc) {
        for (std::uint32_t v : t) {
          sig[i].push_back(static_cast<char>(v & 0xFF));
          sig[i].push_back(static_cast<char>((v >> 8) & 0xFF));
        }
      }
    }
    std::vector<std::string> uniq = sig;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    std::vector<std::uint32_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = static_cast<std::uint32_t>(
          std::lower_bound(uniq.begin(), uniq.end(), sig[i]) - uniq.begin());
    }
    if (next == color) break;
    color = std::move(next);
  }
  return color;
}

}  // namespace

void ShapeGraph::normalize() {
  const std::size_t n = roles.size();
  std::vector<ShapeEdge> kept;
  kept.reserve(edges.size());
  for (const ShapeEdge& e : edges) {
    if (e.from < n && e.to < n && e.from != e.to) kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  edges = std::move(kept);
}

ShapeGraph canonical_form(const ShapeGraph& g) {
  const std::size_t n = g.size();
  if (n == 0) return g;

  const std::vector<std::uint32_t> color = refine_colors(g);

  // Nodes ordered by (color, original index): the base labeling, and the
  // class structure the exact search permutes within.
  std::vector<std::uint8_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint8_t a, std::uint8_t b) {
    return color[a] < color[b];
  });

  // Permutation count respecting the color classes: Π |class|!.
  std::size_t perms = 1;
  for (std::size_t i = 0; i < n && perms <= kMaxPermutations;) {
    std::size_t j = i;
    while (j < n && color[order[j]] == color[order[i]]) ++j;
    for (std::size_t f = 2; f <= j - i; ++f) perms *= f;
    i = j;
  }

  auto to_perm = [&](const std::vector<std::uint8_t>& ord) {
    std::vector<std::uint8_t> perm(n);
    for (std::size_t pos = 0; pos < n; ++pos) perm[ord[pos]] = static_cast<std::uint8_t>(pos);
    return perm;
  };

  std::vector<std::uint8_t> best_ord = order;
  std::string best = serialize_under(g, to_perm(order));
  if (perms > 1 && perms <= kMaxPermutations) {
    // Enumerate within-class permutations via next_permutation per class,
    // odometer-style across classes.
    std::vector<std::pair<std::size_t, std::size_t>> classes;  // [begin, end)
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i;
      while (j < n && color[order[j]] == color[order[i]]) ++j;
      if (j - i > 1) classes.emplace_back(i, j);
      i = j;
    }
    std::vector<std::uint8_t> ord = order;
    auto advance = [&]() -> bool {
      for (auto& [b, e] : classes) {
        if (std::next_permutation(ord.begin() + static_cast<std::ptrdiff_t>(b),
                                  ord.begin() + static_cast<std::ptrdiff_t>(e))) {
          return true;
        }
        // wrapped: this class reset to its sorted order; carry to the next
      }
      return false;
    };
    while (advance()) {
      std::string code = serialize_under(g, to_perm(ord));
      if (code < best) {
        best = std::move(code);
        best_ord = ord;
      }
    }
  }

  const std::vector<std::uint8_t> perm = to_perm(best_ord);
  ShapeGraph out;
  out.roles.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.roles[perm[i]] = g.roles[i];
  out.edges.reserve(g.edges.size());
  for (const ShapeEdge& e : g.edges) {
    out.edges.push_back({perm[e.from], perm[e.to], e.kind});
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

std::string canonical_code(const ShapeGraph& g) {
  std::vector<std::uint8_t> id(g.size());
  std::iota(id.begin(), id.end(), 0);
  return serialize_under(g, id);
}

std::string shape_string(const ShapeGraph& g) {
  // Node names by role: the failing txn is F, ⊥ is I, others T1, T2, … in
  // node order.
  std::vector<std::string> names(g.size());
  std::size_t t = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    switch (g.roles[i]) {
      case kRoleFailing: names[i] = "F"; break;
      case kRoleInit: names[i] = "I"; break;
      default: names[i] = "T" + std::to_string(++t); break;
    }
  }
  if (g.edges.empty()) {
    std::string out;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (i) out += ", ";
      out += names[i];
    }
    return out;
  }
  std::string out;
  for (const ShapeEdge& e : g.edges) {
    if (!out.empty()) out += ", ";
    out += names[e.from];
    out += " -";
    out += kind_name(e.kind);
    out += "-> ";
    out += names[e.to];
  }
  return out;
}

std::uint64_t fnv1a(std::uint64_t seed, std::string_view bytes) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<ShapeGraph> enumerate_subshapes(const ShapeGraph& g,
                                            std::size_t max_edges) {
  std::vector<ShapeGraph> out;
  const std::size_t m = g.edges.size();
  if (m == 0) return out;
  max_edges = std::min(max_edges, m);

  std::vector<std::string> seen;
  std::vector<std::size_t> pick;
  // Enumerate edge subsets of size 1..max_edges (m is small: extraction caps
  // nodes at kMaxNodes, so subsets are at most a few hundred).
  std::vector<std::uint8_t> dsu(g.size());
  auto emit = [&]() {
    // Weak connectivity over the picked edges (union-find on node indices).
    std::iota(dsu.begin(), dsu.end(), 0);
    auto find = [&](std::uint8_t v) {
      while (dsu[v] != v) v = dsu[v] = dsu[dsu[v]];
      return v;
    };
    for (std::size_t ei : pick) {
      const ShapeEdge& e = g.edges[ei];
      dsu[find(e.from)] = find(e.to);
    }
    std::uint8_t root = 0xFF;
    bool touched_any = false;
    for (std::size_t ei : pick) {
      for (std::uint8_t v : {g.edges[ei].from, g.edges[ei].to}) {
        const std::uint8_t r = find(v);
        if (!touched_any) {
          root = r;
          touched_any = true;
        } else if (r != root) {
          return;  // more than one weak component
        }
      }
    }

    // Induce the subgraph on the picked edges' endpoints.
    std::vector<std::uint8_t> remap(g.size(), 0xFF);
    ShapeGraph sub;
    for (std::size_t ei : pick) {
      const ShapeEdge& e = g.edges[ei];
      for (std::uint8_t v : {e.from, e.to}) {
        if (remap[v] == 0xFF) {
          remap[v] = static_cast<std::uint8_t>(sub.roles.size());
          sub.roles.push_back(g.roles[v]);
        }
      }
      sub.edges.push_back({remap[e.from], remap[e.to], e.kind});
    }
    sub.normalize();
    ShapeGraph canon = canonical_form(sub);
    std::string code = canonical_code(canon);
    auto it = std::lower_bound(seen.begin(), seen.end(), code);
    if (it != seen.end() && *it == code) return;
    seen.insert(it, std::move(code));
    out.push_back(std::move(canon));
  };

  // Iterative k-combination enumeration per size.
  for (std::size_t k = 1; k <= max_edges; ++k) {
    pick.resize(k);
    std::iota(pick.begin(), pick.end(), 0);
    while (true) {
      emit();
      // Next combination: bump the rightmost index with room to grow.
      std::size_t i = k;
      while (i > 0 && pick[i - 1] == m - k + (i - 1)) --i;
      if (i == 0) break;
      ++pick[i - 1];
      for (std::size_t j = i; j < k; ++j) pick[j] = pick[j - 1] + 1;
    }
  }
  return out;
}

std::string known_cycle_name(const ShapeGraph& g) {
  // Look for a 2-cycle a→b, b→a and name it by its edge-kind pair, in a
  // fixed priority order so a graph containing several names the sharpest.
  auto has_pair = [&](std::uint8_t k1, std::uint8_t k2) {
    for (const ShapeEdge& e1 : g.edges) {
      if (e1.kind != k1) continue;
      for (const ShapeEdge& e2 : g.edges) {
        if (e2.kind == k2 && e2.from == e1.to && e2.to == e1.from) return true;
      }
    }
    return false;
  };
  if (has_pair(adya::kRW, adya::kRW)) return "write-skew";
  if (has_pair(adya::kWR, adya::kRW)) return "read-skew";
  if (has_pair(adya::kWW, adya::kRW)) return "lost-update";
  if (has_pair(adya::kSD, adya::kRW)) return "stale-snapshot-read";
  if (has_pair(adya::kRT, adya::kRW)) return "stale-read";
  if (has_pair(adya::kWR, adya::kWR)) return "circular-information-flow";
  if (has_pair(adya::kWW, adya::kWW)) return "circular-write-order";
  return "";
}

}  // namespace crooks::forensics
