// Compiled-vs-hashed differential suite.
//
// CompiledHistory is a pure re-indexing of a TransactionSet: interning keys,
// resolving writers, and pre-classifying operations must change *nothing*
// observable. This suite pins that down against the frozen hash-based
// reference engine (checker::reference):
//   * the exhaustive verdict is identical on every isolation level, on
//     fuzzed, store-generated, and hand-built adversarial histories, with
//     and without a version-order restriction — and because both engines
//     use the same candidate order, the witness and node count are
//     identical too, not just the verdict;
//   * the read-state intervals of every operation under any execution match
//     the hashed ReadStateAnalysis interval-for-interval;
//   * mixed timestamped/untimestamped sets — the shape whose candidate
//     ordering was undefined behaviour in the pre-fix comparator — get a
//     deterministic, reference-matching verdict (regression for the
//     strict-weak-order fix).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "checker/checker.hpp"
#include "checker/reference.hpp"
#include "model/analysis.hpp"
#include "model/compiled.hpp"
#include "store/runner.hpp"
#include "workload/observations.hpp"
#include "workload/workload.hpp"

namespace crooks {
namespace {

using checker::CheckOptions;
using checker::CheckResult;
using checker::Outcome;
using ct::IsolationLevel;
using model::TransactionSet;
using model::TxnBuilder;

/// Assert verdict/witness/node equivalence of the compiled sequential
/// exhaustive engine against the hashed reference on one input.
void expect_engines_agree(const TransactionSet& txns, const CheckOptions& opts,
                          const std::string& what) {
  CheckOptions sequential = opts;
  sequential.threads = 1;
  const model::CompiledHistory ch(txns);
  for (IsolationLevel level : ct::kAllLevels) {
    const CheckResult hashed =
        checker::reference::check_exhaustive_hashed(level, txns, sequential);
    const CheckResult compiled = checker::check_exhaustive(level, ch, sequential);
    ASSERT_EQ(compiled.outcome, hashed.outcome)
        << what << " " << ct::name_of(level) << "\n compiled: " << compiled.detail
        << "\n hashed:   " << hashed.detail;
    EXPECT_EQ(compiled.nodes_explored, hashed.nodes_explored)
        << what << " " << ct::name_of(level);
    ASSERT_EQ(compiled.witness.has_value(), hashed.witness.has_value())
        << what << " " << ct::name_of(level);
    if (compiled.witness.has_value()) {
      EXPECT_EQ(compiled.witness->order(), hashed.witness->order())
          << what << " " << ct::name_of(level);
      EXPECT_TRUE(checker::verify_witness(level, ch, *compiled.witness).ok)
          << what << " " << ct::name_of(level);
    }

    // The full dispatcher may route through the graph engine, but whenever it
    // is definite it must agree with the reference oracle.
    if (hashed.outcome != Outcome::kUnknown) {
      const CheckResult dispatched = checker::check(level, ch, sequential);
      if (dispatched.outcome != Outcome::kUnknown) {
        EXPECT_EQ(dispatched.outcome, hashed.outcome)
            << what << " " << ct::name_of(level) << " dispatcher: " << dispatched.detail;
      }
    }
  }
}

/// Assert that the compiled ReadStateAnalysis reproduces the hashed
/// read-state intervals for every operation under `e`.
void expect_intervals_match(const TransactionSet& txns, const model::Execution& e,
                            const std::string& what) {
  const model::ReadStateAnalysis compiled(txns, e);
  const std::vector<std::vector<StateInterval>> hashed =
      checker::reference::read_state_intervals_hashed(txns, e);
  ASSERT_EQ(compiled.size(), hashed.size());
  for (std::size_t d = 0; d < hashed.size(); ++d) {
    const model::TxnAnalysis& ta = compiled.txn(d);
    ASSERT_EQ(ta.ops.size(), hashed[d].size()) << what;
    for (std::size_t i = 0; i < hashed[d].size(); ++i) {
      EXPECT_EQ(ta.ops[i].rs, hashed[d][i])
          << what << " txn " << to_string(txns.at(d).id()) << " op " << i;
    }
  }
}

void expect_all_agree(const TransactionSet& txns,
                      const std::unordered_map<Key, std::vector<TxnId>>* vo,
                      const std::string& what) {
  expect_engines_agree(txns, {}, what + " (unrestricted)");
  if (vo != nullptr) {
    CheckOptions restricted;
    restricted.version_order = vo;
    expect_engines_agree(txns, restricted, what + " (version order)");
  }
  if (!txns.empty()) {
    expect_intervals_match(txns, model::Execution::identity(txns), what + " identity");
    const CheckResult rc =
        checker::check_exhaustive(IsolationLevel::kReadCommitted, txns);
    if (rc.satisfiable()) {
      expect_intervals_match(txns, *rc.witness, what + " RC witness");
    }
  }
}

class CompiledDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledDifferential, FuzzedObservations) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 7;
  opts.keys = 4;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);
  expect_all_agree(f.txns, &f.version_order, "fuzzed");
}

TEST_P(CompiledDifferential, FuzzedUntimestamped) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 7;
  opts.keys = 4;
  opts.with_timestamps = false;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);
  expect_all_agree(f.txns, &f.version_order, "untimestamped");
}

// Regression for the strict-weak-order comparator fix: with a substantial
// fraction of transactions losing their timestamps, the candidate sort runs
// on exactly the mixed sets where the pre-fix comparator was not a strict
// weak order (UB in std::sort). Both engines now share the fixed total
// order, so the agreement must be exact here too.
TEST_P(CompiledDifferential, FuzzedMixedTimestamps) {
  wl::ObservationFuzzOptions opts;
  opts.transactions = 8;
  opts.keys = 4;
  opts.p_untimestamped = 0.4;
  const wl::FuzzedObservations f = wl::fuzz_observations(GetParam(), opts);
  bool any_timed = false, any_untimed = false;
  for (const model::Transaction& t : f.txns) {
    (t.has_timestamps() ? any_timed : any_untimed) = true;
  }
  expect_all_agree(f.txns, &f.version_order, "mixed timestamps");
  if (any_timed && any_untimed) {
    // Genuinely mixed: the untimed levels must still produce a definite,
    // reproducible verdict (pre-fix this was undefined behaviour).
    const CheckResult a = checker::check_exhaustive(IsolationLevel::kReadAtomic, f.txns);
    const CheckResult b = checker::check_exhaustive(IsolationLevel::kReadAtomic, f.txns);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_NE(a.outcome, Outcome::kUnknown);
  }
}

TEST_P(CompiledDifferential, StoreHistories) {
  const store::CCMode modes[] = {
      store::CCMode::kSerial, store::CCMode::kSnapshotIsolation,
      store::CCMode::kReadCommitted, store::CCMode::kReadUncommitted};
  for (store::CCMode mode : modes) {
    wl::MixOptions wopts;
    wopts.transactions = 7;
    wopts.keys = 5;
    wopts.reads_per_txn = 2;
    wopts.writes_per_txn = 2;
    wopts.sessions = 2;
    wopts.seed = GetParam();
    store::RunOptions ropts;
    ropts.mode = mode;
    ropts.seed = GetParam();
    const store::RunResult run = store::run(wl::generate_mix(wopts), ropts);
    expect_all_agree(run.observations, &run.version_order,
                     std::string(store::name_of(mode)));
  }
}

TEST(CompiledDifferentialHandBuilt, AdversarialShapes) {
  // G1a (dangling writer), G1b (phantom), internal reads — including one of
  // another transaction's write (stays external for edge purposes), ⊥ reads
  // of written keys, a writer that never wrote the read key, and sessions.
  const TransactionSet txns{{
      TxnBuilder(1).write(0).write(1).session(SessionId{1}).at(0, 10).build(),
      TxnBuilder(2).read(Key{0}, TxnId{1}).write(0).read(Key{0}, TxnId{2}).at(11, 20).build(),
      TxnBuilder(3).read(Key{0}, TxnId{99}).write(2).session(SessionId{1}).at(12, 21).build(),
      TxnBuilder(4).read_intermediate(Key{1}, TxnId{1}).read(1, 0).at(22, 30).build(),
      TxnBuilder(5).write(1).read(Key{2}, TxnId{1}).at(23, 31).build(),
      TxnBuilder(6).read(2, 3).read(0, 2).session(SessionId{1}).at(32, 40).build(),
  }};
  std::unordered_map<Key, std::vector<TxnId>> vo{
      {Key{0}, {TxnId{1}, TxnId{2}}},
      {Key{1}, {TxnId{1}, TxnId{5}}},
      {Key{2}, {TxnId{3}}},
  };
  expect_all_agree(txns, &vo, "hand-built");
}

TEST(CompiledDifferentialHandBuilt, MixedTimestampRegression) {
  // Deterministic mixed set: the sort that seeds the candidate order sees
  // timestamped and untimestamped transactions side by side.
  const TransactionSet txns{{
      TxnBuilder(1).write(0).at(0, 10).build(),
      TxnBuilder(2).read(0, 1).write(1).build(),  // no timestamps
      TxnBuilder(3).read(1, 2).at(11, 20).build(),
      TxnBuilder(4).write(2).build(),  // no timestamps
      TxnBuilder(5).read(2, 4).read(0, 1).at(21, 30).build(),
  }};
  expect_all_agree(txns, nullptr, "mixed hand-built");
  for (IsolationLevel level : ct::kAllLevels) {
    if (!ct::requires_timestamps(level)) continue;
    EXPECT_TRUE(checker::check_exhaustive(level, txns).unsatisfiable())
        << ct::name_of(level);
  }
  EXPECT_TRUE(checker::check_exhaustive(IsolationLevel::kReadAtomic, txns).satisfiable());
}

TEST(CompiledDifferentialHandBuilt, EmptySet) {
  expect_all_agree(TransactionSet(), nullptr, "empty");
}

// --- SoA layout invariants ---------------------------------------------------

TEST(SoaLayout, OpClassDerivationMatchesSpecifiedBranchOrder) {
  // op_class_of is a 128-entry table; re-derive every entry from the
  // documented branch order (write, then phantom, positional, self, init,
  // unknown / misses-key, else external) so a table regression cannot hide.
  for (unsigned m = 0; m < 128; ++m) {
    const auto flags = static_cast<std::uint8_t>(m);
    model::OpClass want;
    if (flags & model::kOpWrite) {
      want = model::OpClass::kWrite;
    } else if (flags & model::kOpPhantom) {
      want = model::OpClass::kReadNever;
    } else if (flags & model::kOpPositionalInternal) {
      want = (flags & model::kOpSelfWriter) != 0 ? model::OpClass::kReadInternal
                                                 : model::OpClass::kReadNever;
    } else if (flags & model::kOpSelfWriter) {
      want = model::OpClass::kReadNever;
    } else if (flags & model::kOpInitWriter) {
      want = model::OpClass::kReadInitial;
    } else if (flags & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) {
      want = model::OpClass::kReadNever;
    } else {
      want = model::OpClass::kReadExternal;
    }
    EXPECT_EQ(model::op_class_of(flags), want) << "flags " << m;
  }
}

TEST(SoaLayout, ViewAlignsWithSourceOperations) {
  // The OpsView of every transaction must be index-aligned with the raw
  // Operation list, its field accessors must agree with the gathering
  // operator[], and the write bit must mirror Operation::is_write.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const wl::FuzzedObservations f = wl::fuzz_observations(seed);
    const model::CompiledHistory ch(f.txns);
    for (model::TxnIdx d = 0; d < ch.size(); ++d) {
      const auto& t = ch.txns().at(d);
      const model::OpsView v = ch.ops(d);
      ASSERT_EQ(v.size(), t.ops().size());
      ASSERT_EQ(v.size(), ch.op_count(d));
      for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_EQ(v.is_write(i), t.ops()[i].is_write()) << d << ":" << i;
        EXPECT_EQ(v.is_read(i), !v.is_write(i)) << d << ":" << i;
        EXPECT_EQ(v.key(i), ch.keys().find(t.ops()[i].key)) << d << ":" << i;
        const model::CompiledOp gathered = v[i];
        EXPECT_EQ(gathered.key, v.key(i)) << d << ":" << i;
        EXPECT_EQ(gathered.writer, v.writer(i)) << d << ":" << i;
        EXPECT_EQ(gathered.cls, v.cls(i)) << d << ":" << i;
        EXPECT_EQ(gathered.flags, v.flags(i)) << d << ":" << i;
        EXPECT_EQ(gathered.cls, model::op_class_of(v.flags(i))) << d << ":" << i;
        EXPECT_EQ(gathered.internal(), v.internal(i)) << d << ":" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace crooks
