# Empty dependencies file for si_family_test.
# This may be replaced when dependencies are built.
