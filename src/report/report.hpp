// Human-readable isolation audits.
//
// Turns checker verdicts into the report a database operator would want:
// the strongest level the observations admit, per-level verdicts with the
// violating clause, named anomalies (when an install order lets the Adya
// phenomena be computed), and a rendering of the witness execution's states.
#pragma once

#include <string>

#include "checker/checker.hpp"
#include "forensics/pattern_table.hpp"
#include "report/serialize.hpp"

namespace crooks::report {

struct AuditResult {
  /// Strongest satisfied level along the main lattice (nullopt when even
  /// ReadUncommitted is unsatisfiable, possible only under a version-order
  /// restriction).
  std::optional<ct::IsolationLevel> strongest;
  std::string text;  // the full rendered report
};

/// Audit observations against every isolation level.
AuditResult audit(const Observations& obs, const checker::CheckOptions& base = {});

/// audit() plus violation forensics (`crooks-check --forensics`). The
/// observations are REPLAYED through the OnlineChecker + forensics::Collector
/// — the exact machinery `--follow` runs — so `table` (and its
/// forensics_json export) is byte-identical to a streaming run over the same
/// log, whatever the block batching. The rendered text gains a "violation
/// forensics" section: the aggregated pattern table, mined sub-shapes, and
/// one exemplar witness line per offline engine refutation (those engine
/// witnesses annotate the text only — they never enter `table`, which the
/// determinism gate diffs against --follow).
struct ForensicsAudit {
  AuditResult base;
  forensics::PatternTable table;  // apply-order replay aggregate
};
ForensicsAudit audit_with_forensics(const Observations& obs,
                                    const checker::CheckOptions& base = {});

/// Render an execution state by state: each transaction applied, the keys it
/// changed, and the resulting state's contents (intended for small
/// executions; output grows with |keys| × |txns|).
std::string render_execution(const model::TransactionSet& txns,
                             const model::Execution& e);

/// Render a refutation's minimal read-state evidence (checker::ReadDiagnosis)
/// as a human-readable counterexample: the failing transaction, the violated
/// commit-test clause, the implicated read and the candidate read states it
/// was judged against. Every line is indented two spaces; ends with '\n'.
std::string render_counterexample(const checker::ReadDiagnosis& d);

}  // namespace crooks::report
