#include "report/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace crooks::report {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + why);
}

/// Split a line into tokens, dropping comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

std::uint64_t parse_u64(const std::string& s, std::size_t line, const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    if (used != s.size()) fail(line, std::string("bad ") + what + ": '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, std::string("bad ") + what + ": '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line, std::string("out-of-range ") + what + ": '" + s + "'");
  }
}

Timestamp parse_ts(const std::string& s, std::size_t line, const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) fail(line, std::string("bad ") + what + ": '" + s + "'");
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + ": '" + s + "'");
  }
}

ct::IsolationLevel parse_level(const std::string& s, std::size_t line) {
  if (const auto l = ct::level_from_name(s)) return *l;
  fail(line, "unknown isolation level '" + s +
                 "' (valid: " + std::string(ct::kValidLevelNames) + ")");
}

}  // namespace

Observations parse_observations(std::istream& in) {
  std::vector<model::Transaction> txns;
  std::unordered_map<Key, std::vector<TxnId>> vo;
  std::optional<ct::IsolationLevel> default_level;

  std::string line;
  std::size_t lineno = 0;

  // Open-transaction state.
  bool open = false;
  TxnId id{};
  SessionId session = kNoSession;
  SiteId site{0};
  Timestamp start = kNoTimestamp, commit = kNoTimestamp;
  std::optional<ct::IsolationLevel> level;
  std::vector<model::Operation> ops;

  auto close = [&](std::size_t at) {
    if (!open) fail(at, "'end' without 'txn'");
    txns.emplace_back(id, std::move(ops), session, site, start, commit, level);
    ops = {};
    open = false;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "txn") {
      if (open) fail(lineno, "'txn' while another transaction is open");
      if (tok.size() < 2) fail(lineno, "txn needs an id");
      open = true;
      id = TxnId{parse_u64(tok[1], lineno, "txn id")};
      session = kNoSession;
      site = SiteId{0};
      start = commit = kNoTimestamp;
      level = std::nullopt;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) fail(lineno, "expected key=value: '" + tok[i] + "'");
        const std::string key = tok[i].substr(0, eq);
        const std::string val = tok[i].substr(eq + 1);
        if (key == "session") {
          session = SessionId{static_cast<std::uint32_t>(parse_u64(val, lineno, "session"))};
        } else if (key == "site") {
          site = SiteId{static_cast<std::uint32_t>(parse_u64(val, lineno, "site"))};
        } else if (key == "start") {
          start = parse_ts(val, lineno, "start");
        } else if (key == "commit") {
          commit = parse_ts(val, lineno, "commit");
        } else if (key == "level") {
          level = parse_level(val, lineno);
        } else {
          fail(lineno, "unknown attribute '" + key + "'");
        }
      }
    } else if (tok[0] == "read") {
      if (!open) fail(lineno, "'read' outside a transaction");
      if (tok.size() < 3) fail(lineno, "read needs: read <key> <writer> [phantom]");
      const Key k{parse_u64(tok[1], lineno, "key")};
      const TxnId w{parse_u64(tok[2], lineno, "writer")};
      const bool phantom = tok.size() > 3 && tok[3] == "phantom";
      if (tok.size() > 3 && !phantom) fail(lineno, "unexpected token '" + tok[3] + "'");
      ops.push_back(phantom ? model::Operation::read_intermediate(k, w)
                            : model::Operation::read(k, w));
    } else if (tok[0] == "write") {
      if (!open) fail(lineno, "'write' outside a transaction");
      if (tok.size() != 2) fail(lineno, "write needs: write <key>");
      ops.push_back(model::Operation::write(Key{parse_u64(tok[1], lineno, "key")}, id));
    } else if (tok[0] == "end") {
      close(lineno);
    } else if (tok[0] == "vo") {
      if (open) fail(lineno, "'vo' inside a transaction");
      if (tok.size() < 2) fail(lineno, "vo needs: vo <key> <id...>");
      auto& order = vo[Key{parse_u64(tok[1], lineno, "key")}];
      for (std::size_t i = 2; i < tok.size(); ++i) {
        order.push_back(TxnId{parse_u64(tok[i], lineno, "txn id")});
      }
    } else if (tok[0] == "default-level") {
      if (open) fail(lineno, "'default-level' inside a transaction");
      if (tok.size() != 2) fail(lineno, "default-level needs: default-level <name>");
      default_level = parse_level(tok[1], lineno);
    } else {
      fail(lineno, "unknown directive '" + tok[0] + "'");
    }
  }
  if (open) fail(lineno, "unterminated transaction (missing 'end')");

  return {model::TransactionSet(std::move(txns)), std::move(vo), default_level};
}

Observations parse_observations(const std::string& text) {
  std::istringstream ss(text);
  return parse_observations(ss);
}

void write_observations(std::ostream& out, const Observations& obs) {
  if (obs.default_level.has_value()) {
    out << "default-level " << ct::name_of(*obs.default_level) << "\n";
  }
  for (const model::Transaction& t : obs.txns) {
    out << "txn " << t.id().value;
    if (t.session() != kNoSession) out << " session=" << t.session().value;
    if (t.site() != SiteId{0}) out << " site=" << t.site().value;
    if (t.start_ts() != kNoTimestamp) out << " start=" << t.start_ts();
    if (t.commit_ts() != kNoTimestamp) out << " commit=" << t.commit_ts();
    if (t.level().has_value()) out << " level=" << ct::name_of(*t.level());
    out << "\n";
    for (const model::Operation& op : t.ops()) {
      if (op.is_read()) {
        out << "  read " << op.key.value << " " << op.value.writer.value
            << (op.value.phantom ? " phantom" : "") << "\n";
      } else {
        out << "  write " << op.key.value << "\n";
      }
    }
    out << "end\n";
  }
  for (const auto& [key, order] : obs.version_order) {
    out << "vo " << key.value;
    for (TxnId id : order) out << " " << id.value;
    out << "\n";
  }
}

std::string to_text(const Observations& obs) {
  std::ostringstream ss;
  write_observations(ss, obs);
  return ss.str();
}

}  // namespace crooks::report
