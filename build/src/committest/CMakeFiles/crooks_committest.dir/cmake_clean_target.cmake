file(REMOVE_RECURSE
  "libcrooks_committest.a"
)
