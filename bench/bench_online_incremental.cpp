// Streaming audit throughput: the incremental compiled online checker vs its
// two ablations, on the same store-generated commit stream.
//
//  * Incremental      — one OnlineChecker fed blocks via append_all; each
//    block is one CompiledDelta (extend the interners, re-resolve pending
//    writers, splice ts_order), so steady-state cost per transaction is
//    independent of how much stream came before. This is the `--follow` path.
//  * FreshRecompile   — what append_all on a non-empty checker did before
//    deltas existed conceptually: at every block boundary, build a fresh
//    checker and replay the whole prefix. Work grows quadratically in the
//    number of blocks.
//  * Hashed           — checker::reference::OnlineCheckerHashed, the frozen
//    pre-compile monitor: per-transaction appends with id-hash writer probes,
//    O(n) recency scans and O(n) retroactive scans.
//
// Counters per exported row: appends_per_sec (steady-state transactions
// audited per second), fallback_appends (OnlineChecker's hashed-fallback
// tripwire — CI fails if this is ever nonzero), host_cpus, and on the
// incremental runs speedup_vs_hashed / speedup_vs_recompile (the baselines
// run first in the same process). BM_OnlineObsOverhead runs the block=100
// configuration with the metrics registry alternately enabled and disabled
// in paired halves and exports obs_overhead_pct — the instrumented-vs-off
// delta CI gates at ≤5%. Export with
//   --benchmark_format=json > BENCH_checker_online.json
//
// When CROOKS_OBS_METRICS_JSON names a file, the process's final metrics
// scrape (obs::Registry JSON) is written there on exit — the CI fallback
// gate asserts on that scrape instead of parsing per-row bench counters.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "checker/online.hpp"
#include "checker/reference.hpp"
#include "obs/metrics.hpp"
#include "store/runner.hpp"
#include "workload/workload.hpp"

using namespace crooks;

namespace {

constexpr std::size_t kStreamTxns = 5000;

/// The commit stream: a store run's observations in apply order. Generated
/// once; every variant audits the identical stream.
const model::TransactionSet& stream() {
  static const model::TransactionSet txns = [] {
    const auto intents = wl::generate_mix({.transactions = kStreamTxns,
                                           .keys = 64,
                                           .reads_per_txn = 2,
                                           .writes_per_txn = 2,
                                           .seed = 41});
    return store::run(intents, {.mode = store::CCMode::kSnapshotIsolation,
                                .seed = 83, .concurrency = 4, .retries = 3})
        .observations;
  }();
  return txns;
}

std::map<std::string, double>& baselines() {
  static std::map<std::string, double> b;
  return b;
}

void record(benchmark::State& state, double secs_per_iter, std::size_t appends,
            std::uint64_t fallback) {
  state.SetItemsProcessed(static_cast<std::int64_t>(appends) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["appends_per_sec"] = static_cast<double>(appends) / secs_per_iter;
  state.counters["fallback_appends"] = static_cast<double>(fallback);
  state.counters["host_cpus"] = std::thread::hardware_concurrency();
}

/// Frozen hashed monitor, per-transaction appends over the whole stream.
void BM_OnlineHashed(benchmark::State& state) {
  const model::TransactionSet& txns = stream();
  double secs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    checker::reference::OnlineCheckerHashed chk;
    benchmark::DoNotOptimize(chk.append_all(txns));
    benchmark::DoNotOptimize(chk.all_ok());
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  const double secs_per_iter = secs / static_cast<double>(state.iterations());
  baselines()["Hashed"] = secs_per_iter;
  record(state, secs_per_iter, txns.size(), 0);
}
BENCHMARK(BM_OnlineHashed)->UseRealTime();

/// Re-audit from scratch at every block boundary (block size = Arg). The
/// appends counted are the stream's transactions — the quadratic replay work
/// is the overhead under measurement, exactly what deltas eliminate.
void BM_OnlineFreshRecompile(benchmark::State& state) {
  const model::TransactionSet& txns = stream();
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<model::Transaction> all(txns.begin(), txns.end());
  double secs = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t end = block; end - block < all.size(); end += block) {
      checker::OnlineChecker chk;
      benchmark::DoNotOptimize(chk.append_all(
          std::span<const model::Transaction>(all.data(), std::min(end, all.size()))));
      benchmark::DoNotOptimize(chk.all_ok());
    }
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  const double secs_per_iter = secs / static_cast<double>(state.iterations());
  baselines()["FreshRecompile"] = secs_per_iter;
  record(state, secs_per_iter, all.size(), 0);
}
BENCHMARK(BM_OnlineFreshRecompile)->Arg(100)->UseRealTime();

/// The real streaming path: one checker, one CompiledDelta per block.
void BM_OnlineIncremental(benchmark::State& state) {
  const model::TransactionSet& txns = stream();
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<model::Transaction> all(txns.begin(), txns.end());
  double secs = 0;
  std::uint64_t fallback = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    checker::OnlineChecker chk;
    for (std::size_t off = 0; off < all.size(); off += block) {
      benchmark::DoNotOptimize(chk.append_all(std::span<const model::Transaction>(
          all.data() + off, std::min(block, all.size() - off))));
    }
    benchmark::DoNotOptimize(chk.all_ok());
    secs += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    fallback += chk.stats().hashed_fallback_appends;
  }
  const double secs_per_iter = secs / static_cast<double>(state.iterations());
  record(state, secs_per_iter, all.size(), fallback);
  if (baselines().count("Hashed")) {
    state.counters["speedup_vs_hashed"] = baselines()["Hashed"] / secs_per_iter;
  }
  if (baselines().count("FreshRecompile")) {
    state.counters["speedup_vs_recompile"] =
        baselines()["FreshRecompile"] / secs_per_iter;
  }
}
BENCHMARK(BM_OnlineIncremental)->Arg(1)->Arg(10)->Arg(100)->UseRealTime();

/// Instrumentation overhead, paired A/B: every iteration runs the block=100
/// streaming audit four times in an ABBA pattern (registry on, off, off, on)
/// so linear clock/thermal drift contributes equally to both arms, and the
/// exported overhead is the median of per-cycle on/off ratios. Comparing
/// against a benchmark that happened to run earlier in the process reported
/// phantom double-digit overheads on shared runners; this design measures
/// 1–2% on the same machine. Exports obs_overhead_pct; CI gates ≤5%.
void BM_OnlineObsOverhead(benchmark::State& state) {
  const model::TransactionSet& txns = stream();
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<model::Transaction> all(txns.begin(), txns.end());
  const auto audit_once = [&all, block] {
    const auto t0 = std::chrono::steady_clock::now();
    checker::OnlineChecker chk;
    for (std::size_t off = 0; off < all.size(); off += block) {
      benchmark::DoNotOptimize(chk.append_all(std::span<const model::Transaction>(
          all.data() + off, std::min(block, all.size() - off))));
    }
    benchmark::DoNotOptimize(chk.all_ok());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  audit_once();  // untimed warmup: the first audit pays allocator/cache
                 // cold-start, which must not land on one arm of the A/B
  double secs_on = 0, secs_off = 0;
  std::vector<double> ratios;  // one on/off ratio per ABBA cycle
  for (auto _ : state) {
    // ABBA within the iteration: linear clock/thermal drift contributes
    // equally to both arms even when the measurement is a single iteration.
    // The exported overhead is the MEDIAN of per-cycle ratios, not the ratio
    // of totals — one descheduled audit (common on small shared runners)
    // would otherwise swing the whole measurement by double digits.
    double on = 0, off = 0;
    static constexpr bool kPattern[] = {true, false, false, true};
    for (const bool measure_on : kPattern) {
      obs::set_enabled(measure_on);
      (measure_on ? on : off) += audit_once();
    }
    secs_on += on;
    secs_off += off;
    if (off > 0) ratios.push_back(on / off);
  }
  obs::set_enabled(true);
  // Two instrumented audits per iteration: halve for a per-audit figure.
  const double iters = static_cast<double>(state.iterations());
  record(state, secs_on / (2 * iters), all.size(), 0);
  if (!ratios.empty()) {
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    state.counters["obs_overhead_pct"] =
        (ratios[ratios.size() / 2] - 1.0) * 100.0;
  }
}
BENCHMARK(BM_OnlineObsOverhead)->Arg(100)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // The fallback tripwire and the rest of the online series live in the
  // metrics registry; export the final scrape for the CI gate.
  if (const char* path = std::getenv("CROOKS_OBS_METRICS_JSON")) {
    std::ofstream out(path);
    out << crooks::obs::Registry::global().json() << "\n";
  }
  return 0;
}
