file(REMOVE_RECURSE
  "CMakeFiles/session_guarantees_test.dir/session_guarantees_test.cpp.o"
  "CMakeFiles/session_guarantees_test.dir/session_guarantees_test.cpp.o.d"
  "session_guarantees_test"
  "session_guarantees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_guarantees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
