#include "forensics/forensics.hpp"

#include <algorithm>

#include "adya/graph.hpp"

namespace crooks::forensics {

using model::TxnIdx;

std::string_view name_of(Clause c) {
  switch (c) {
    case Clause::kPreread: return "preread";
    case Clause::kFracturedRead: return "fractured-read";
    case Clause::kCausalVisibility: return "causal-miss";
    case Clause::kParentIncomplete: return "incomplete-parent";
    case Clause::kSnapshot: return "snapshot";
    case Clause::kCommitOrder: return "commit-order";
    case Clause::kTimeOracle: return "time-oracle";
    case Clause::kRealtime: return "real-time";
    case Clause::kSessionOrder: return "session-order";
    case Clause::kOther: return "other";
  }
  return "other";
}

Clause classify_clause(std::string_view why) {
  auto has = [&](std::string_view needle) {
    return why.find(needle) != std::string_view::npos;
  };
  if (has("PREREAD")) return Clause::kPreread;
  if (has("fractured read")) return Clause::kFracturedRead;
  if (has("CAUS-VIS")) return Clause::kCausalVisibility;
  if (has("parent state")) return Clause::kParentIncomplete;
  if (has("C-ORD")) return Clause::kCommitOrder;
  if (has("time oracle")) return Clause::kTimeOracle;
  // SI-family snapshot search failures — the online monitor folds the timed
  // recency lower bounds into one admissible-state message, so the offline
  // no-complete / NO-CONF / T_s<_sT spellings classify with it.
  if (has("no complete state") || has("NO-CONF") ||
      has("no admissible snapshot") || has("T_s <_s T")) {
    return Clause::kSnapshot;
  }
  if (has("session predecessor") || has("Session SI recency")) {
    return Clause::kSessionOrder;
  }
  if (has("real-time") || has("snapshot misses") || has("recency fails")) {
    return Clause::kRealtime;
  }
  return Clause::kOther;
}

namespace {

/// Append-stable test: is op i of `ops` an external read of an APPLIED
/// member writer? (writer resolved, dense < f — a same-block forward
/// reference is excluded, exactly as it would be had the block been split.)
bool applied_external_read(const model::OpsView& ops, std::size_t i, TxnIdx f) {
  if (ops.cls(i) != model::OpClass::kReadExternal) return false;
  const TxnIdx w = ops.writer(i);
  return w != model::kNoTxnIdx && w < f;
}

void sort_unique_keys(std::vector<Key>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

Witness extract_witness(const model::CompiledHistory& ch, const WitnessInputs& in) {
  Witness w;
  w.clause = in.clause;
  w.level = in.level;
  w.engine = in.engine;
  const TxnIdx f = in.failing;
  w.txn = ch.id_of(f);

  // Node 0 is always the failing transaction. dense_of[i] is the dense index
  // behind nodes[i] (kNoTxnIdx for the synthetic ⊥ node).
  std::vector<TxnIdx> dense_of;
  w.nodes.push_back({w.txn, kRoleFailing, ch.session(f), {}, {}});
  dense_of.push_back(f);
  auto node_of = [&](TxnIdx d, std::uint8_t role) -> std::uint8_t {
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      if (dense_of[i] == d) return static_cast<std::uint8_t>(i);
    }
    w.nodes.push_back({ch.id_of(d), role, ch.session(d), {}, {}});
    dense_of.push_back(d);
    return static_cast<std::uint8_t>(w.nodes.size() - 1);
  };

  struct RawEdge {
    std::uint8_t from, to, kind;
    Key key;
    bool keyed;
  };
  std::vector<RawEdge> edges;

  const bool f_resident = f >= ch.retired();
  std::uint8_t init_node = 0xFF;
  // (key, writer node) of each usable external read, for the missed-write
  // reconstruction below.
  std::vector<std::pair<model::KeyIdx, std::uint8_t>> reads;

  if (f_resident) {
    const model::OpsView ops = ch.ops(f);
    std::vector<TxnIdx> writers;  // dense writers, node-capped deterministically
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (applied_external_read(ops, i, f)) writers.push_back(ops.writer(i));
    }
    std::sort(writers.begin(), writers.end());
    writers.erase(std::unique(writers.begin(), writers.end()), writers.end());
    // Cap the neighborhood: keep f, ⊥, `other`, then observed writers in
    // dense order. (kMaxNodes is small; count what was dropped.)
    std::size_t budget = kMaxNodes - 2;  // room for f + possibly init
    if (in.other != model::kNoTxnIdx) --budget;
    if (writers.size() > budget) {
      w.truncated = static_cast<std::uint32_t>(writers.size() - budget);
      writers.resize(budget);
    }
    auto kept = [&](TxnIdx d) {
      return std::binary_search(writers.begin(), writers.end(), d);
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::uint8_t m = ops.flags(i);
      const model::KeyIdx k = ops.key(i);
      const Key key = ch.keys().key_of(k);
      if ((m & model::kOpWrite) != 0) continue;
      if (ops.cls(i) == model::OpClass::kReadInitial) {
        if (init_node == 0xFF) {
          init_node = static_cast<std::uint8_t>(w.nodes.size());
          w.nodes.push_back({kInitTxn, kRoleInit, kNoSession, {}, {}});
          dense_of.push_back(model::kNoTxnIdx);
        }
        edges.push_back({init_node, 0, adya::kWR, key, true});
        reads.emplace_back(k, init_node);
        continue;
      }
      if (!applied_external_read(ops, i, f) || !kept(ops.writer(i))) continue;
      const std::uint8_t wn = node_of(ops.writer(i), kRoleOther);
      edges.push_back({wn, 0, adya::kWR, key, true});
      reads.emplace_back(k, wn);
    }
  }

  // The clause's named other transaction (retroactive inverter, C-ORD
  // predecessor, missed writer). Its scalar columns are retained even when
  // it is retired.
  std::uint8_t other_node = 0xFF;
  if (in.other != model::kNoTxnIdx && in.other != f) {
    other_node = node_of(in.other, kRoleOther);
    std::uint8_t kind = 0;
    switch (in.clause) {
      case Clause::kRealtime:
      case Clause::kCommitOrder:
        kind = adya::kRT;
        break;
      case Clause::kSessionOrder:
      case Clause::kSnapshot:
        kind = adya::kSD;
        break;
      default:
        break;  // missed-writer relations are reconstructed below
    }
    if (kind != 0) edges.push_back({other_node, 0, kind, Key{}, false});
  }

  // Missed-write reconstruction: for every non-failing node n and every key
  // f read from some OTHER node, if n also wrote that key then f's read
  // skipped n's version — an anti-dependency f -rw-> n. This recovers the
  // fractured-read wr+rw pair, the CAUS-VIS miss, and the write-skew /
  // G-SI rw edge toward the clause's named transaction, from retained
  // (window-exact) footprint data only: writes_key() is exact even for a
  // retired `other`.
  if (f_resident) {
    for (std::size_t n = 1; n < w.nodes.size(); ++n) {
      if (w.nodes[n].role == kRoleInit) continue;
      const TxnIdx dn = dense_of[n];
      for (const auto& [k, wn] : reads) {
        if (wn == n) continue;
        if (!ch.writes_key(dn, k)) continue;
        edges.push_back({0, static_cast<std::uint8_t>(n), adya::kRW,
                         ch.keys().key_of(k), true});
      }
    }
  }

  w.shape.roles.clear();
  for (const WitnessNode& n : w.nodes) w.shape.roles.push_back(n.role);
  for (const RawEdge& e : edges) w.shape.edges.push_back({e.from, e.to, e.kind});
  w.shape.normalize();

  // Implicated keys + per-node footprints from the keyed edges: a wr edge
  // means `from` wrote and `to` read the key; an rw edge means `from` read a
  // key `to` (also) wrote.
  for (const RawEdge& e : edges) {
    if (!e.keyed) continue;
    w.keys.push_back(e.key);
    if (e.kind == adya::kWR) {
      w.nodes[e.from].writes.push_back(e.key);
      w.nodes[e.to].reads.push_back(e.key);
    } else if (e.kind == adya::kRW) {
      w.nodes[e.from].reads.push_back(e.key);
      w.nodes[e.to].writes.push_back(e.key);
    }
  }
  sort_unique_keys(w.keys);
  for (WitnessNode& n : w.nodes) {
    sort_unique_keys(n.reads);
    sort_unique_keys(n.writes);
  }

  const ShapeGraph canon = canonical_form(w.shape);
  w.shape_str = shape_string(canon);
  std::uint64_t h = fnv1a(kFnvBasis, name_of(w.clause));
  h = fnv1a(h, std::string_view("\0", 1));
  w.fingerprint = fnv1a(h, canonical_code(canon));
  return w;
}

std::optional<Witness> witness_from_diagnosis(const model::CompiledHistory& ch,
                                              const checker::ReadDiagnosis& d,
                                              std::string engine,
                                              ct::IsolationLevel fallback_level) {
  // Dense index of the failing transaction (cold path; linear scan).
  TxnIdx f = model::kNoTxnIdx;
  const TxnIdx n = static_cast<TxnIdx>(ch.size());
  for (TxnIdx i = 0; i < n; ++i) {
    if (ch.id_of(i) == d.txn) {
      f = i;
      break;
    }
  }
  if (f == model::kNoTxnIdx) return std::nullopt;
  WitnessInputs in;
  in.failing = f;
  in.clause = classify_clause(d.clause);
  in.level = d.level.value_or(fallback_level);
  in.engine = std::move(engine);
  return extract_witness(ch, in);
}

std::optional<Witness> witness_from_result(const model::CompiledHistory& ch,
                                           const checker::CheckResult& r,
                                           ct::IsolationLevel level) {
  if (!r.unsatisfiable() || !r.diagnosis.has_value()) return std::nullopt;
  return witness_from_diagnosis(ch, *r.diagnosis,
                                r.engine.empty() ? "unknown" : r.engine, level);
}

}  // namespace crooks::forensics
