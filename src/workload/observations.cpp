#include "workload/observations.hpp"

#include <algorithm>

namespace crooks::wl {

FuzzedObservations fuzz_observations(std::uint64_t seed,
                                     const ObservationFuzzOptions& opts) {
  Rng rng(seed);

  // Phase 1: decide every transaction's write set, so reads can observe any
  // writer — earlier or later (the checker must figure out whether an
  // execution ordering them exists).
  std::vector<std::vector<Key>> writes(opts.transactions);
  std::unordered_map<Key, std::vector<TxnId>> writers_of;
  for (std::size_t i = 0; i < opts.transactions; ++i) {
    const std::size_t n = rng.below(opts.max_writes + 1);
    std::vector<bool> used(opts.keys, false);
    for (std::size_t w = 0; w < n; ++w) {
      const std::uint64_t k = rng.below(opts.keys);
      if (used[k]) continue;
      used[k] = true;
      writes[i].push_back(Key{k});
      writers_of[Key{k}].push_back(TxnId{i + 1});
    }
  }

  // Phase 2: reads.
  std::vector<model::Transaction> txns;
  txns.reserve(opts.transactions);
  Timestamp clock = 0;
  for (std::size_t i = 0; i < opts.transactions; ++i) {
    const TxnId id{i + 1};
    std::vector<model::Operation> ops;
    std::vector<bool> read_used(opts.keys, false);

    const std::size_t n_reads = rng.below(opts.max_reads + 1);
    for (std::size_t r = 0; r < n_reads; ++r) {
      const std::uint64_t kv = rng.below(opts.keys);
      if (read_used[kv]) continue;
      read_used[kv] = true;
      const Key k{kv};

      TxnId observed = kInitTxn;
      if (rng.chance(opts.p_dangling)) {
        observed = TxnId{1000 + rng.below(100)};
      } else {
        const auto it = writers_of.find(k);
        if (it != writers_of.end() && !it->second.empty() && rng.chance(0.8)) {
          observed = it->second[rng.below(it->second.size())];
          if (observed == id) observed = kInitTxn;  // own writes handled below
        }
      }
      if (rng.chance(opts.p_phantom) && observed != kInitTxn) {
        ops.push_back(model::Operation::read_intermediate(k, observed));
      } else {
        ops.push_back(model::Operation::read(k, observed));
      }
    }
    for (Key k : writes[i]) ops.push_back(model::Operation::write(k, id));

    const SessionId session =
        opts.sessions == 0
            ? kNoSession
            : SessionId{static_cast<std::uint32_t>(rng.below(opts.sessions))};
    Timestamp start = kNoTimestamp, commit = kNoTimestamp;
    if (opts.with_timestamps) {
      start = clock + static_cast<Timestamp>(rng.below(3));
      commit = start + 1 + static_cast<Timestamp>(rng.below(5));
      clock = std::max(clock, commit - static_cast<Timestamp>(rng.below(4)));
      ++clock;
      // Drop the pair (not just one) so has_timestamps() is cleanly false;
      // guarded so the rng stream is untouched when the knob is off.
      if (opts.p_untimestamped > 0 && rng.chance(opts.p_untimestamped)) {
        start = kNoTimestamp;
        commit = kNoTimestamp;
      }
    }
    std::optional<ct::IsolationLevel> level;
    // Guarded so the rng stream is untouched when the knob is off.
    if (opts.p_level_annotation > 0 && rng.chance(opts.p_level_annotation)) {
      level = ct::kAllLevels[rng.below(ct::kAllLevels.size())];
    }
    txns.emplace_back(id, std::move(ops), session, SiteId{0}, start, commit, level);
  }

  // Random (but syntactically valid) install orders.
  FuzzedObservations out{model::TransactionSet(std::move(txns)), {}};
  for (auto& [key, ws] : writers_of) {
    std::vector<TxnId> order = ws;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    out.version_order.emplace(key, std::move(order));
  }
  return out;
}

}  // namespace crooks::wl
