#include "replication/simulator.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/zipf.hpp"

namespace crooks::repl {

namespace {

/// Visibility lag (everywhere-visible time − commit time, in simulated ticks)
/// per apply discipline, so the paper's Figure-style comparison — traditional
/// log-prefix replication vs client-centric dependency-driven application —
/// is directly scrapeable.
obs::Histogram& visibility_lag(const char* discipline) {
  return obs::Registry::global().histogram(
      "crooks_repl_visibility_lag",
      "Everywhere-visible lag of committed transactions in simulated ticks",
      obs::depth_buckets(), {{"discipline", discipline}});
}
obs::Histogram& dep_queue_depth() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_repl_dep_queue_depth",
      "Direct client-centric dependencies tracked per committed transaction",
      obs::depth_buckets());
  return h;
}

struct SimTxn {
  TxnId id{};
  std::uint32_t origin = 0;
  std::uint64_t commit_time = 0;
  std::vector<Key> reads;
  std::vector<TxnId> read_from;          // visible writer per read
  std::vector<Key> writes;
  std::vector<std::size_t> deps;         // direct client-centric deps (dense)
  std::vector<std::uint64_t> applied_trad;  // per site
  std::vector<std::uint64_t> applied_cc;    // per site
  bool touches_slow = false;
};

}  // namespace

SimResult simulate(const SimOptions& o) {
  obs::TraceSpan span("repl.simulate");
  static obs::Histogram& lag_trad = visibility_lag("traditional");
  static obs::Histogram& lag_cc = visibility_lag("client_centric");
  Rng rng(o.seed);
  wl::ZipfGenerator zipf(o.keys, o.zipf_theta);

  std::vector<SimTxn> txns;                      // committed, dense order
  std::vector<std::vector<std::size_t>> site_log(o.sites);  // dense indices
  // Monotone per-site history of "visible everywhere" times of local commits
  // (for the traditional unreplicated-prefix dependency count).
  std::vector<std::vector<std::uint64_t>> site_visible_hist(o.sites);

  // Per-site visible key versions, advanced by the traditional schedule.
  using PendingApply = std::pair<std::uint64_t, std::size_t>;  // (when, dense)
  std::vector<std::unordered_map<Key, std::size_t>> visible(o.sites);  // dense+1; 0=⊥
  std::vector<std::priority_queue<PendingApply, std::vector<PendingApply>,
                                  std::greater<>>>
      pending(o.sites);

  std::unordered_map<Key, std::size_t> global_latest;  // dense+1 of last writer
  std::unordered_map<Key, std::vector<TxnId>> version_order;

  SimResult result;
  const auto partition_of = [&](Key k) {
    return static_cast<std::uint32_t>(k.value % o.partitions);
  };

  for (std::uint64_t t = 0; t < o.transactions; ++t) {
    const std::uint32_t site = static_cast<std::uint32_t>(t % o.sites);

    // Advance this site's visible state to time t (traditional schedule).
    auto& pq = pending[site];
    while (!pq.empty() && pq.top().first <= t) {
      const std::size_t dense = pq.top().second;
      pq.pop();
      for (Key k : txns[dense].writes) {
        // Never regress a key: applies may arrive out of version order
        // across origins (dense order == global commit order).
        std::size_t& slot = visible[site][k];
        slot = std::max(slot, dense + 1);
      }
    }

    // Generate the transaction's footprint (distinct keys).
    std::unordered_set<std::uint64_t> picked;
    SimTxn txn;
    while (txn.reads.size() < o.reads_per_txn) {
      const std::uint64_t k = zipf(rng);
      if (picked.insert(k).second) txn.reads.push_back(Key{k});
    }
    while (txn.writes.size() < o.writes_per_txn) {
      std::uint64_t k = zipf(rng);
      if (o.site_local_writes) k = (k / o.sites) * o.sites + site;  // own shard
      if (picked.insert(k).second) txn.writes.push_back(Key{k});
    }

    // PSI first-committer-wins (P2): abort when a written key has a
    // committed version not yet visible at the origin (somewhere-concurrent
    // conflicting write).
    bool conflict = false;
    for (Key k : txn.writes) {
      const auto git = global_latest.find(k);
      if (git == global_latest.end()) continue;
      const auto vit = visible[site].find(k);
      if (vit == visible[site].end() || vit->second != git->second) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      ++result.ww_aborts;
      continue;
    }

    const std::size_t dense = txns.size();
    txn.id = TxnId{static_cast<std::uint64_t>(dense) + 1};
    txn.origin = site;
    txn.commit_time = t;

    // Observed dependencies: read-from writers + the overwritten version's
    // writer — exactly what a client-centric PSI implementation must track.
    std::unordered_set<std::size_t> dep_set;
    for (Key k : txn.reads) {
      const auto vit = visible[site].find(k);
      const std::size_t writer = vit == visible[site].end() ? 0 : vit->second;
      txn.read_from.push_back(writer == 0 ? kInitTxn : txns[writer - 1].id);
      if (writer != 0) dep_set.insert(writer - 1);
    }
    for (Key k : txn.writes) {
      const auto vit = visible[site].find(k);
      if (vit != visible[site].end() && vit->second != 0) dep_set.insert(vit->second - 1);
      txn.touches_slow |= o.slowdown.has_value() &&
                          partition_of(k) == o.slowdown->partition;
    }
    txn.deps.assign(dep_set.begin(), dep_set.end());

    // Traditional dependency count: unreplicated origin-log prefix.
    const auto& hist = site_visible_hist[site];
    const std::size_t trad_deps =
        hist.end() - std::upper_bound(hist.begin(), hist.end(), t);

    // Apply schedules.
    const bool slowed = txn.touches_slow && o.slowdown.has_value() &&
                        t >= o.slowdown->from && t < o.slowdown->until;
    txn.applied_trad.assign(o.sites, 0);
    txn.applied_cc.assign(o.sites, 0);
    for (std::uint32_t dest = 0; dest < o.sites; ++dest) {
      if (dest == site) {
        txn.applied_trad[dest] = t;
        txn.applied_cc[dest] = t;
        continue;
      }
      const std::uint64_t avail =
          t + o.replication_delay + (slowed ? o.slowdown->extra_delay : 0);
      std::uint64_t trad = avail;
      std::uint64_t cc = avail;
      if (!site_log[site].empty()) {
        trad = std::max(trad, txns[site_log[site].back()].applied_trad[dest]);
      }
      for (std::size_t d : txn.deps) {
        trad = std::max(trad, txns[d].applied_trad[dest]);
        cc = std::max(cc, txns[d].applied_cc[dest]);
      }
      txn.applied_trad[dest] = trad;
      txn.applied_cc[dest] = cc;
    }

    const std::uint64_t trad_visible =
        *std::max_element(txn.applied_trad.begin(), txn.applied_trad.end());
    const std::uint64_t cc_visible =
        *std::max_element(txn.applied_cc.begin(), txn.applied_cc.end());

    // Install locally; schedule remote applies. Reads follow the
    // client-centric schedule: the simulated system IS the client-centric
    // implementation, while the traditional apply times are the
    // counterfactual being measured against. Dependency-driven application
    // still yields causally-consistent site states (a transaction applies
    // only after everything it observed), which is what PSI requires.
    for (Key k : txn.writes) {
      visible[site][k] = dense + 1;
      global_latest[k] = dense + 1;
      version_order[k].push_back(txn.id);
    }
    for (std::uint32_t dest = 0; dest < o.sites; ++dest) {
      if (dest != site) pending[dest].push({txn.applied_cc[dest], dense});
    }
    site_log[site].push_back(dense);
    site_visible_hist[site].push_back(trad_visible);

    if (obs::enabled()) {
      lag_trad.observe(static_cast<double>(trad_visible - t));
      lag_cc.observe(static_cast<double>(cc_visible - t));
      dep_queue_depth().observe(static_cast<double>(txn.deps.size()));
    }

    result.txns.push_back({txn.id, SiteId{site}, t, trad_deps, txn.deps.size(),
                           trad_visible, cc_visible, txn.touches_slow});
    txns.push_back(std::move(txn));
  }

  result.committed = txns.size();
  span.field("transactions", static_cast<std::uint64_t>(o.transactions))
      .field("sites", static_cast<std::uint64_t>(o.sites))
      .field("committed", static_cast<std::uint64_t>(txns.size()))
      .field("ww_aborts", static_cast<std::uint64_t>(result.ww_aborts));
  result.version_order = std::move(version_order);

  // Export client observations.
  std::vector<model::Transaction> obs;
  obs.reserve(txns.size());
  for (const SimTxn& t : txns) {
    std::vector<model::Operation> ops;
    ops.reserve(t.reads.size() + t.writes.size());
    for (std::size_t i = 0; i < t.reads.size(); ++i) {
      ops.push_back(model::Operation::read(t.reads[i], t.read_from[i]));
    }
    for (Key k : t.writes) ops.push_back(model::Operation::write(k, t.id));
    obs.emplace_back(t.id, std::move(ops), kNoSession, SiteId{t.origin},
                     static_cast<Timestamp>(2 * t.commit_time),
                     static_cast<Timestamp>(2 * t.commit_time + 1));
  }
  result.observations = model::TransactionSet(std::move(obs));
  return result;
}

double SimResult::mean_traditional_deps() const {
  if (txns.empty()) return 0;
  double sum = 0;
  for (const TxnMetrics& t : txns) sum += static_cast<double>(t.traditional_deps);
  return sum / static_cast<double>(txns.size());
}

double SimResult::mean_client_deps() const {
  if (txns.empty()) return 0;
  double sum = 0;
  for (const TxnMetrics& t : txns) sum += static_cast<double>(t.client_deps);
  return sum / static_cast<double>(txns.size());
}

double SimResult::mean_unrelated_latency(bool traditional) const {
  double sum = 0;
  std::size_t n = 0;
  for (const TxnMetrics& t : txns) {
    if (t.touches_slow_partition) continue;
    sum += static_cast<double>((traditional ? t.traditional_visible : t.client_visible) -
                               t.commit_time);
    ++n;
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

}  // namespace crooks::repl
