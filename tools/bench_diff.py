#!/usr/bin/env python3
"""Compare two google-benchmark JSON exports by benchmark name.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--tolerance=0.25]
                  [--counter=NAME] [--forbid-debug] [--require-names]

Rows are matched on the benchmark `name` field. For each matched row the
primary time (`real_time`, normalized to seconds) and any shared counters are
compared; the per-row table prints candidate/baseline ratios. The exit status
is the CI contract:

  0  every matched row within tolerance (and no --forbid-debug violation)
  1  some ratio outside [1/(1+tol), 1+tol] for the checked metric(s)
  2  structural problems: unreadable input, no common rows, a debug build
     with --forbid-debug, or --require-names with unmatched baseline rows

--tolerance is the allowed relative slack (default 0.25 = +-25%) applied to
the primary time; by default counters are printed but not gated. Pass
--counter=NAME (repeatable) to gate specific counters too — useful for rate
counters like txns_per_sec where the time row is a constant-iteration total.

--forbid-debug fails when EITHER file was recorded from a non-optimized
build. The truthful key is `crooks_build_type` in the context (stamped by
bench_env.hpp with the CMAKE_BUILD_TYPE of the repo's own code); when absent,
the library's `library_build_type` is used as a fallback signal.
"""

import argparse
import json
import sys

TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
OPTIMIZED = {"release", "relwithdebinfo", "minsizerel"}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def build_type(doc):
    ctx = doc.get("context", {})
    crooks = ctx.get("crooks_build_type")
    if crooks:
        return crooks, "crooks_build_type"
    return ctx.get("library_build_type", "unknown"), "library_build_type"


def rows(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def time_seconds(row):
    unit = TIME_UNIT_SECONDS.get(row.get("time_unit", "ns"), 1e-9)
    return float(row.get("real_time", 0.0)) * unit


def counters(row):
    skip = {
        "name", "family_index", "per_family_instance_index", "run_name",
        "run_type", "repetitions", "repetition_index", "threads",
        "iterations", "real_time", "cpu_time", "time_unit",
    }
    return {k: v for k, v in row.items()
            if k not in skip and isinstance(v, (int, float))}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slack on gated metrics (0.25 = ±25%%)")
    ap.add_argument("--counter", action="append", default=[],
                    help="also gate this counter (repeatable)")
    ap.add_argument("--forbid-debug", action="store_true",
                    help="fail if either file came from a non-optimized build")
    ap.add_argument("--require-names", action="store_true",
                    help="fail if any baseline row is missing from the candidate")
    args = ap.parse_args()

    base_doc, cand_doc = load(args.baseline), load(args.candidate)

    status = 0
    if args.forbid_debug:
        for path, doc in ((args.baseline, base_doc), (args.candidate, cand_doc)):
            bt, key = build_type(doc)
            if bt.lower() not in OPTIMIZED:
                print(f"bench_diff: {path}: {key}={bt!r} is not an optimized "
                      "build (--forbid-debug)", file=sys.stderr)
                status = 2
        if status:
            return status

    base, cand = rows(base_doc), rows(cand_doc)
    common = [n for n in base if n in cand]
    missing = [n for n in base if n not in cand]
    if not common:
        print("bench_diff: no common benchmark names", file=sys.stderr)
        return 2

    lo, hi = 1.0 / (1.0 + args.tolerance), 1.0 + args.tolerance
    name_w = max(len(n) for n in common)
    print(f"{'benchmark':<{name_w}}  {'base_s':>12}  {'cand_s':>12}  "
          f"{'ratio':>7}  gated-counter ratios")
    for name in common:
        b, c = base[name], cand[name]
        bt, ct = time_seconds(b), time_seconds(c)
        ratio = ct / bt if bt > 0 else float("inf")
        flagged = not (lo <= ratio <= hi)
        extra = []
        bc, cc = counters(b), counters(c)
        for key in sorted(set(bc) & set(cc)):
            if bc[key] == 0:
                continue
            r = cc[key] / bc[key]
            gate = key in args.counter
            if gate and not (lo <= r <= hi):
                flagged = True
            if gate:
                extra.append(f"{key}={r:.3f}")
        mark = "  <-- OUT OF TOLERANCE" if flagged else ""
        if flagged:
            status = max(status, 1)
        print(f"{name:<{name_w}}  {bt:>12.6f}  {ct:>12.6f}  {ratio:>7.3f}  "
              f"{' '.join(extra)}{mark}")

    if missing:
        print(f"bench_diff: {len(missing)} baseline row(s) missing from "
              f"candidate: {', '.join(missing)}", file=sys.stderr)
        if args.require_names:
            status = 2
    return status


if __name__ == "__main__":
    sys.exit(main())
