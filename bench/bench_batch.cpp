// Batch scheduler ablation: size-class sharded vs wait()-barrier dispatch.
//
// The workload is the shape the sharded scheduler exists for — an audit
// stream dominated by tiny histories (2 transactions, one op each: the
// per-check work is a few microseconds, so per-task dispatch plus per-task
// pool instrumentation is a real fraction of runtime) with large 9-transaction
// histories interleaved so every size class is scheduled. The barrier
// reference reimplements the pre-sharding check_batch faithfully: maximal
// prefix-extension chains via the fused (non-prescanned) compare, one pool
// task per chain, results into a preallocated vector, a pool-wide wait() —
// exactly the scheduler the sharded one replaced. Both run the identical
// per-history check, so the measured difference is scheduling alone: tiny
// chains packed 16-per-task amortize the submit/dequeue/instrumentation cost
// the barrier pays per history, and completed shards drain through the MPMC
// queue instead of a barrier.
//
// Exported counters per row: threads, histories_per_sec, host_cpus, and on
// sharded rows speedup_vs_barrier (the barrier run at the same thread count
// in the same process is the baseline). Timings on a shared host are noisy,
// so the speedup is computed from the best (minimum) per-iteration wall time
// of each scheduler — the stable signal EXPERIMENTS.md documents for every
// committed ratio. On this repo's 1-CPU reference container the entire win
// is dispatch amortization; on a multi-core host the large class adds
// branch-parallel refutation latency on top (see BENCH_checker_scaling.json).
// Verdict parity between the two schedulers and the lone sequential check()
// is asserted at startup — a bench binary must never time a scheduler that
// changes answers. Export:
//   --benchmark_format=json > BENCH_checker_batch.json
// When CROOKS_OBS_METRICS_JSON names a file, the final metrics scrape is
// written there; CI gates crooks_batch_results_total ==
// crooks_batch_items_total on it (zero results dropped by the MPMC queue).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "checker/checker.hpp"
#include "common/thread_pool.hpp"
#include "model/compiled.hpp"
#include "model/transaction.hpp"
#include "obs/metrics.hpp"
#include "workload/observations.hpp"

using namespace crooks;

namespace {

/// Large size class (9 transactions), refuted at the first read: T1 observes
/// a writer no transaction in the set matches, so every execution prefix
/// fails PREREAD immediately. Exercises the large-shard branch-parallel path
/// without letting one factorial refutation dominate the tiny-dispatch signal
/// this bench isolates (BM_ExhaustiveRefutation tracks that cost).
model::TransactionSet dangling_large() {
  using model::TxnBuilder;
  std::vector<model::Transaction> txns;
  txns.push_back(TxnBuilder(1).read(0, 777).at(0, 1).build());
  for (std::uint64_t i = 2; i <= 9; ++i) {
    txns.push_back(TxnBuilder(i)
                       .write(Key{i})
                       .at(static_cast<Timestamp>(2 * i),
                           static_cast<Timestamp>(2 * i + 1))
                       .build());
  }
  return model::TransactionSet(std::move(txns));
}

/// 4096 tiny fuzzed histories with two large histories interleaved at the
/// third points (breaking the tiny runs the way a real mixed stream would).
std::vector<model::TransactionSet> mixed_workload() {
  std::vector<model::TransactionSet> histories;
  constexpr std::size_t kTiny = 4096;
  wl::ObservationFuzzOptions fo;
  fo.transactions = 2;
  fo.keys = 2;
  fo.max_reads = 1;
  fo.max_writes = 1;
  for (std::size_t i = 0; i < kTiny; ++i) {
    if (i == kTiny / 3 || i == 2 * kTiny / 3) histories.push_back(dangling_large());
    histories.push_back(wl::fuzz_observations(1000 + i, fo).txns);
  }
  return histories;
}

const std::vector<model::TransactionSet>& workload() {
  static const std::vector<model::TransactionSet> w = mixed_workload();
  return w;
}

/// The pre-sharding scheduler, reimplemented as the ablation baseline:
/// maximal prefix-extension chains (fused compare, no prescan), one pool
/// task per chain with every search at threads = 1, a preallocated result
/// vector and a pool-wide barrier.
std::vector<checker::CheckResult> check_batch_barrier(
    ct::IsolationLevel level, const std::vector<model::TransactionSet>& histories,
    std::size_t threads) {
  auto extends_prefix_fused = [](const model::TransactionSet& prev,
                                 const model::TransactionSet& next) {
    if (next.size() < prev.size()) return false;
    for (std::size_t i = 0; i < prev.size(); ++i) {
      const model::Transaction& a = prev.at(i);
      const model::Transaction& b = next.at(i);
      if (a.id() != b.id() || a.session() != b.session() || a.site() != b.site() ||
          a.start_ts() != b.start_ts() || a.commit_ts() != b.commit_ts() ||
          a.ops() != b.ops()) {
        return false;
      }
    }
    return true;
  };

  struct Chain {
    std::size_t first = 0, count = 1;
  };
  std::vector<Chain> chains;
  for (std::size_t i = 0; i < histories.size(); ++i) {
    if (!chains.empty()) {
      const Chain& c = chains.back();
      const model::TransactionSet& prev = histories[c.first + c.count - 1];
      if (!prev.empty() && extends_prefix_fused(prev, histories[i])) {
        ++chains.back().count;
        continue;
      }
    }
    chains.push_back({i, 1});
  }

  std::vector<checker::CheckResult> results(histories.size());
  checker::CheckOptions opts;
  opts.threads = 1;
  parallel_for_each_index(threads, chains.size(), [&](std::size_t ci) {
    const Chain& chain = chains[ci];
    model::CompiledHistory grown;
    std::size_t compiled = 0;
    for (std::size_t j = 0; j < chain.count; ++j) {
      const std::size_t i = chain.first + j;
      if (chain.count == 1) {
        const model::CompiledHistory ch(histories[i]);
        results[i] = checker::check(level, ch, opts);
        continue;
      }
      std::vector<model::Transaction> block;
      for (std::size_t t = compiled; t < histories[i].size(); ++t) {
        block.push_back(histories[i].at(t));
      }
      if (!block.empty()) grown.extend(block);
      compiled = histories[i].size();
      results[i] = checker::check(level, grown, opts);
    }
  });
  return results;
}

/// The mixed-level batch policy: T1 of every history audited at RC, the rest
/// at SER. Every workload history contains a T1, so each item resolves to a
/// genuinely mixed assignment — the per-item resolve + mixed dispatch the
/// BM_BatchMixedPolicy row prices against the uniform sharded row.
ct::LevelPolicy mixed_policy() {
  return ct::LevelPolicy{ct::IsolationLevel::kSerializable,
                         {{TxnId{1}, ct::IsolationLevel::kReadCommitted}},
                         /*use_annotations=*/true};
}

/// Both schedulers must reproduce the lone sequential verdicts before any
/// timing is believed.
void assert_parity() {
  const auto& histories = workload();
  checker::CheckOptions lone;
  lone.threads = 1;
  checker::CheckOptions sharded;
  sharded.threads = 2;
  const auto barrier =
      check_batch_barrier(ct::IsolationLevel::kSerializable, histories, 2);
  const auto batch =
      checker::check_batch(ct::IsolationLevel::kSerializable, histories, sharded);
  for (std::size_t i = 0; i < histories.size(); ++i) {
    const auto want =
        checker::check(ct::IsolationLevel::kSerializable, histories[i], lone).outcome;
    if (barrier[i].outcome != want || batch[i].outcome != want) {
      std::fprintf(stderr, "scheduler verdict mismatch on history %zu\n", i);
      std::abort();
    }
  }

  // The mixed-policy batch must reproduce the lone per-item mixed verdicts
  // (policy resolved against each history's own compilation), and a
  // trivially uniform policy must match the level form exactly.
  const ct::LevelPolicy policy = mixed_policy();
  const auto mixed = checker::check_batch(policy, histories, sharded);
  for (std::size_t i = 0; i < histories.size(); ++i) {
    const model::CompiledHistory ch(histories[i]);
    const auto want = checker::check(policy.resolve(ch), ch, lone).outcome;
    if (mixed[i].outcome != want) {
      std::fprintf(stderr, "mixed-policy verdict mismatch on history %zu\n", i);
      std::abort();
    }
  }
  const auto uniform_policy = checker::check_batch(
      ct::LevelPolicy::uniform(ct::IsolationLevel::kSerializable), histories, lone);
  const auto uniform_level = checker::check_batch(
      ct::IsolationLevel::kSerializable, histories, lone);
  for (std::size_t i = 0; i < histories.size(); ++i) {
    if (uniform_policy[i].outcome != uniform_level[i].outcome ||
        uniform_policy[i].nodes_explored != uniform_level[i].nodes_explored) {
      std::fprintf(stderr, "uniform policy diverged on history %zu\n", i);
      std::abort();
    }
  }
}

/// Barrier best-iteration baselines, keyed by thread count (benchmarks run in
/// registration order, so the barrier rows fill these first).
std::map<std::int64_t, double>& barrier_best() {
  static std::map<std::int64_t, double> b;
  return b;
}

void record(benchmark::State& state, double total_secs, double best_secs,
            bool sharded) {
  const double n = static_cast<double>(workload().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(workload().size()) *
                          state.iterations());
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["histories_per_sec"] =
      n * static_cast<double>(state.iterations()) / total_secs;
  state.counters["host_cpus"] = std::thread::hardware_concurrency();
  if (!sharded) {
    barrier_best()[state.range(0)] = best_secs;
  } else if (barrier_best().count(state.range(0))) {
    state.counters["speedup_vs_barrier"] = barrier_best()[state.range(0)] / best_secs;
  }
}

void BM_BatchBarrier(benchmark::State& state) {
  const auto& histories = workload();
  const auto threads = static_cast<std::size_t>(state.range(0));
  double total = 0, best = 1e100;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results =
        check_batch_barrier(ct::IsolationLevel::kSerializable, histories, threads);
    benchmark::DoNotOptimize(results.data());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total += secs;
    best = std::min(best, secs);
  }
  record(state, total, best, /*sharded=*/false);
}
BENCHMARK(BM_BatchBarrier)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BatchSharded(benchmark::State& state) {
  const auto& histories = workload();
  checker::CheckOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  double total = 0, best = 1e100;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results =
        checker::check_batch(ct::IsolationLevel::kSerializable, histories, opts);
    benchmark::DoNotOptimize(results.data());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total += secs;
    best = std::min(best, secs);
  }
  record(state, total, best, /*sharded=*/true);
}
BENCHMARK(BM_BatchSharded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Mixed-level row: the same sharded scheduler driven by a per-transaction
/// policy (T1 at RC over a SER fallback), so every item pays the per-item
/// resolve plus the mixed dispatch. Comparable with BM_BatchSharded at the
/// same thread count — the difference is the mixed-audit overhead.
void BM_BatchMixedPolicy(benchmark::State& state) {
  const auto& histories = workload();
  const ct::LevelPolicy policy = mixed_policy();
  checker::CheckOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  double total = 0, best = 1e100;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = checker::check_batch(policy, histories, opts);
    benchmark::DoNotOptimize(results.data());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total += secs;
    best = std::min(best, secs);
  }
  record(state, total, best, /*sharded=*/true);
}
BENCHMARK(BM_BatchMixedPolicy)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  assert_parity();
  benchmark::RunSpecifiedBenchmarks();
  // Final registry scrape for the CI zero-dropped-results gate
  // (crooks_batch_results_total must equal crooks_batch_items_total).
  if (const char* path = std::getenv("CROOKS_OBS_METRICS_JSON")) {
    std::ofstream out(path);
    out << obs::Registry::global().json() << "\n";
  }
  return 0;
}
