# Empty dependencies file for crooks_store.
# This may be replaced when dependencies are built.
