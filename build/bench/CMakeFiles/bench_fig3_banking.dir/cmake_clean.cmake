file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_banking.dir/bench_fig3_banking.cpp.o"
  "CMakeFiles/bench_fig3_banking.dir/bench_fig3_banking.cpp.o.d"
  "bench_fig3_banking"
  "bench_fig3_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
