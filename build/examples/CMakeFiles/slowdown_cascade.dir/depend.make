# Empty dependencies file for slowdown_cascade.
# This may be replaced when dependencies are built.
