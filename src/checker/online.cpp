#include "checker/online.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crooks::checker {

using ct::IsolationLevel;
using model::Transaction;
using model::TxnIdx;

namespace {

obs::Counter& online_blocks_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_blocks_total", "Blocks ingested by the online checker");
  return c;
}
obs::Counter& online_txns_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_txns_total",
      "Transactions evaluated on compiled deltas by the online checker");
  return c;
}
obs::Counter& online_duplicates_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_duplicates_total",
      "Transactions ignored by the online checker as duplicate ids");
  return c;
}
obs::Histogram& online_block_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_online_block_seconds",
      "Latency of one online ingest (compile delta + evaluate block)");
  return h;
}
obs::Counter& online_fallback_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_fallback_appends_total",
      "Transactions served from the pre-compile hashed path; must stay 0 "
      "(every append compiles) — CI gates on this series");
  return c;
}
obs::Counter& online_retired_txns_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_retired_txns_total",
      "Transactions folded past the window watermark by the online checker");
  return c;
}
obs::Counter& online_retired_ops_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_retired_ops_total",
      "Compiled operation rows reclaimed by window retirement");
  return c;
}
obs::Counter& online_folds_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_window_folds_total",
      "Window retirement epochs executed by the online checker");
  return c;
}
obs::Counter& online_past_reads_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_past_window_reads_total",
      "Reads of versions older than the retained window summary (the "
      "windowed verdict is one-sided for these)");
  return c;
}
obs::Counter& online_past_checks_total() {
  static obs::Counter& c = obs::Registry::global().counter(
      "crooks_online_past_window_checks_total",
      "Lossy non-read evaluations under the window: a Session-SI lower bound "
      "that may hide behind the retired-session marker, or a PSI PREC absorb "
      "of a retired writer whose closure summary was dropped (one-sided)");
  return c;
}
obs::Gauge& online_watermark_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_online_watermark",
      "First dense index not yet retired by the online checker's window");
  return g;
}
obs::Gauge& online_resident_txns_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_online_resident_txns",
      "Transactions currently resident in the online checker");
  return g;
}
obs::Gauge& online_resident_ops_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "crooks_online_resident_ops",
      "Compiled operation rows currently resident in the online checker");
  return g;
}
obs::Histogram& online_fold_txns_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "crooks_online_fold_txns",
      "Transactions retired per window fold", obs::size_buckets());
  return h;
}

/// The one increment site of crooks_online_violations_total (it used to be
/// duplicated across the assigned/uniform branches of violate). The session
/// label matches the forensics series: low-cardinality in practice (sessions
/// are workload worker ids), "s-" for session-less transactions.
void count_violation(ct::IsolationLevel level, SessionId session) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter("crooks_online_violations_total",
               "First violations recorded per tracked level",
               {{"level", std::string(ct::name_of(level))},
                {"session", crooks::to_string(session)}})
      .inc();
}

/// Sorted-vector intersection: keep only elements of v present in `keep`.
void intersect_sorted(std::vector<std::size_t>& v,
                      const std::vector<std::size_t>& keep) {
  std::size_t out = 0;
  for (std::size_t x : v) {
    if (std::binary_search(keep.begin(), keep.end(), x)) v[out++] = x;
  }
  v.resize(out);
}

}  // namespace

OnlineChecker::OnlineChecker(std::vector<IsolationLevel> levels) {
  for (IsolationLevel l : levels) statuses_.emplace(l, LevelStatus{});
  weak_only_ = true;
  for (const auto& [l, s] : statuses_) {
    if (l != IsolationLevel::kReadUncommitted &&
        l != IsolationLevel::kReadCommitted &&
        l != IsolationLevel::kReadAtomic && l != IsolationLevel::kPSI) {
      weak_only_ = false;
      break;
    }
  }
}

OnlineChecker::OnlineChecker(TrackAssignedTag, IsolationLevel fallback)
    : assigned_mode_(true), assigned_fallback_(fallback) {
  // A later block may annotate any level, so the weak-only direct path (and
  // its skipped PREC/interval bookkeeping) is never safe here.
  weak_only_ = false;
}

const OnlineChecker::LevelStatus& OnlineChecker::status(IsolationLevel level) const {
  return statuses_.at(level);
}

bool OnlineChecker::all_ok() const {
  if (!assigned_status_.ok) return false;
  for (const auto& [level, s] : statuses_) {
    if (!s.ok) return false;
  }
  return true;
}

std::vector<IsolationLevel> OnlineChecker::surviving_levels() const {
  std::vector<IsolationLevel> out;
  for (const auto& [level, s] : statuses_) {
    if (s.ok) out.push_back(level);
  }
  return out;
}

void OnlineChecker::violate(IsolationLevel level, TxnIdx d, std::string why,
                            TxnIdx other) {
  const TxnId txn = stream_.id_of(d);
  std::string* explanation = nullptr;
  if (assigned_mode_) {
    if (!assigned_status_.ok) return;  // sticky first violation
    assigned_status_.ok = false;
    assigned_status_.first_violation = txn;
    // Mirror ct::CommitTester::test_all(LevelAssignment): the explanation
    // names the violated transaction's own level.
    assigned_status_.explanation = crooks::to_string(txn) + " [" +
                                   std::string(ct::name_of(level)) + "]: " + why;
    explanation = &assigned_status_.explanation;
  } else {
    auto it = statuses_.find(level);
    if (it == statuses_.end() || !it->second.ok) return;  // sticky first violation
    it->second.ok = false;
    it->second.first_violation = txn;
    it->second.explanation = crooks::to_string(txn) + ": " + why;
    explanation = &it->second.explanation;
  }
  count_violation(level, stream_.session(d));
  if (obs::Trace::active()) {
    obs::Trace::event("online.violation",
                      obs::TraceFields()
                          .add("level", ct::name_of(level))
                          .add("txn", crooks::to_string(txn))
                          .add("why", *explanation));
  }
  if (violation_hook_) violation_hook_({level, txn, d, other, why});
}

bool OnlineChecker::append(const Transaction& txn) {
  if (txn.id() == kInitTxn || stream_.txns().contains(txn.id())) {
    ++stats_.duplicates_ignored;
    online_duplicates_total().inc();
    return false;
  }
  ingest(stream_.extend(txn));
  return true;
}

std::size_t OnlineChecker::append_all(std::span<const Transaction> block) {
  append_fresh_.clear();
  append_fresh_.reserve(block.size());
  append_seen_.clear();
  for (const Transaction& t : block) {
    if (t.id() == kInitTxn || stream_.txns().contains(t.id()) ||
        !append_seen_.insert(t.id()).second) {
      ++stats_.duplicates_ignored;
      online_duplicates_total().inc();
      continue;
    }
    append_fresh_.push_back(t);
  }
  if (append_fresh_.empty()) return 0;
  ingest(stream_.extend(append_fresh_));
  return append_fresh_.size();
}

std::size_t OnlineChecker::append_all(const model::TransactionSet& txns) {
  const std::vector<Transaction> block(txns.begin(), txns.end());
  return append_all(std::span<const Transaction>(block));
}

std::size_t OnlineChecker::append_all(const model::CompiledHistory& ch) {
  std::vector<Transaction> block;
  block.reserve(ch.size());
  for (TxnIdx d = 0; d < ch.size(); ++d) block.push_back(ch.txns().at(d));
  return append_all(std::span<const Transaction>(block));
}

void OnlineChecker::ingest(const model::CompiledDelta& delta) {
  obs::TraceSpan span("online.ingest");
  obs::ScopedTimer timer(online_block_seconds());
  ++stats_.blocks;
  stats_.compiled_appends += delta.count;
  if (obs::enabled()) {
    online_blocks_total().inc();
    online_txns_total().inc(delta.count);
    // Register the tripwire series so it appears (at 0) in every scrape the
    // bench exports; a future fallback path must inc() it.
    online_fallback_total();
  }
  span.field("first", static_cast<std::uint64_t>(delta.first))
      .field("count", static_cast<std::uint64_t>(delta.count))
      .field("stream_size", static_cast<std::uint64_t>(stream_.size()));
  timelines_.resize(stream_.key_count());
  max_dropped_pos_.resize(stream_.key_count(), 0);

  if (weak_only_) {
    // Every tracked level decides on read-state starts alone — skip the
    // per-op interval construction entirely.
    for (TxnIdx d = delta.first; d < delta.first + delta.count; ++d) {
      ingest_weak_txn(d);
    }
    maybe_retire();
    return;
  }

  // Evaluate the block's transactions one by one in dense (= apply) order:
  // when transaction d is evaluated only [0, d) is installed, so "has the
  // observed writer been applied yet" is the dense compare `writer < d` —
  // exact for prefix writers, earlier block members, and intra-block forward
  // references alike.
  for (TxnIdx d = delta.first; d < delta.first + delta.count; ++d) {
    Placed p;
    p.state = static_cast<StateIndex>(d) + 1;
    const StateIndex parent = p.state - 1;
    const model::OpsView cops = stream_.ops(d);
    stats_.ops_evaluated += cops.size();
    p.ops.reserve(cops.size());
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0) {
        p.ops.push_back({{0, parent}, false});
        continue;
      }
      if ((m & model::kOpPhantom) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      if ((m & model::kOpPositionalInternal) != 0) {
        p.ops.push_back((m & model::kOpSelfWriter) != 0
                            ? OpView{{0, parent}, true}
                            : OpView{{0, -1}, true});
        continue;
      }
      if ((m & model::kOpSelfWriter) != 0) {
        p.ops.push_back({{0, -1}, false});
        continue;
      }
      StateIndex version_pos = 0;
      if ((m & model::kOpInitWriter) == 0) {
        if ((m & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) != 0 ||
            cops.writer(i) >= d) {  // writer not applied yet: reads from the future
          p.ops.push_back({{0, -1}, false});
          continue;
        }
        version_pos = static_cast<StateIndex>(cops.writer(i)) + 1;
      }
      const model::KeyIdx k = cops.key(i);
      // Folds drop a key's inner retired versions. A read at or above the
      // largest dropped position reconstructs its interval exactly from the
      // kept entries; below it the true next-write may be gone, the interval
      // comes out too permissive, and every downstream clause errs on the
      // lenient side — count the one-sided evaluation.
      if (version_pos < max_dropped_pos_[k]) {
        ++stats_.past_window_reads;
        if (obs::enabled()) online_past_reads_total().inc();
      }
      const auto* tl = timeline_of(k);
      StateIndex next_write = parent + 2;
      if (tl != nullptr) {
        auto it = std::upper_bound(
            tl->begin(), tl->end(), version_pos,
            [](StateIndex v, const auto& en) { return v < en.first; });
        if (it != tl->end()) next_write = it->first;
      }
      p.ops.push_back({{version_pos, std::min(next_write - 1, parent)}, false});
    }

    commit_placed(d, std::move(p));
  }
  maybe_retire();
}

void OnlineChecker::ingest_weak_txn(TxnIdx d) {
  const model::OpsView cops = stream_.ops(d);
  stats_.ops_evaluated += cops.size();
  ++stats_.direct_appends;

  // Per-op read-state starts from flags and dense compares alone. The start
  // is exactly `rs.first` of the general path: 0 for writes, phantoms,
  // internals, and initial-version reads; writer+1 for applied member
  // writers. PREREAD emptiness is likewise a flags fact — an applied member
  // version's interval {writer+1, min(next_write-1, parent)} is never empty
  // (upper_bound guarantees next_write > writer+1 and writer < d gives
  // writer+1 ≤ parent), and the initial version's {0, ...} always admits 0.
  weak_firsts_.assign(cops.size(), 0);
  bool preread = true;
  for (std::size_t i = 0; i < cops.size(); ++i) {
    const std::uint8_t m = cops.flags(i);
    if ((m & model::kOpWrite) != 0) continue;
    if ((m & model::kOpPhantom) != 0) {
      preread = false;
      continue;
    }
    if ((m & model::kOpPositionalInternal) != 0) {
      if ((m & model::kOpSelfWriter) == 0) preread = false;
      continue;
    }
    if ((m & model::kOpSelfWriter) != 0) {
      preread = false;
      continue;
    }
    if ((m & model::kOpInitWriter) != 0) continue;
    if ((m & (model::kOpUnknownWriter | model::kOpWriterMissesKey)) != 0 ||
        cops.writer(i) >= d) {  // writer not applied yet: reads from the future
      preread = false;
      continue;
    }
    weak_firsts_[i] = static_cast<StateIndex>(cops.writer(i)) + 1;
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, d, "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA) — identical filters and iteration order to the
  // general path, with rs.first read from the scratch array.
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m1 = cops.flags(i);
      if ((m1 & model::kOpWrite) != 0 || cops.internal(i) ||
          (m1 & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w1 = cops.writer(i);
      if (w1 == model::kNoTxnIdx || w1 >= d) continue;  // not applied
      for (std::size_t j = 0; j < cops.size(); ++j) {
        if (cops.is_write(j) || cops.internal(j)) continue;
        if (stream_.writes_key(w1, cops.key(j)) &&
            weak_firsts_[i] > weak_firsts_[j]) {
          violate(IsolationLevel::kReadAtomic, d,
                  "fractured read across " + crooks::to_string(stream_.id_of(w1)) +
                      "'s writes",
                  w1);
        }
      }
    }
  }

  Placed p;
  p.state = static_cast<StateIndex>(d) + 1;

  // CAUS-VIS (PSI). Under PREREAD every surviving read is of the initial or
  // an applied member version, whose interval start decides timeline
  // visibility: entry pos > rs.last ⟺ pos > rs.first, because entries at
  // pos ≤ rs.last are exactly those at pos ≤ rs.first (upper_bound picks the
  // first entry past the version) and no installed entry exceeds parent.
  if (tracking(IsolationLevel::kPSI) && preread) {
    p.prec.recent.grow(static_cast<std::size_t>(d) - prec_origin_ + 1);
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0 || cops.internal(i) ||
          (m & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w = cops.writer(i);
      if (w != model::kNoTxnIdx && w < d) prec_absorb(p, w);
    }
    for (model::KeyIdx k : stream_.write_keys(d)) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) prec_absorb(p, slot);
      }
    }
    for (std::size_t i = 0; i < cops.size(); ++i) {
      if (cops.is_write(i) || cops.internal(i)) continue;
      const model::KeyIdx k = cops.key(i);
      // Dropped versions above this read's start may hide a missed write:
      // one-sided, counted (same rule as the general path's intervals).
      if (weak_firsts_[i] < max_dropped_pos_[k]) {
        ++stats_.past_window_reads;
        if (obs::enabled()) online_past_reads_total().inc();
      }
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) {
          if (pos > weak_firsts_[i] && prec_test(p, slot)) {
            violate(IsolationLevel::kPSI, d,
                    "CAUS-VIS fails: misses " +
                        crooks::to_string(stream_.id_of(static_cast<TxnIdx>(slot))) +
                        "'s write to " +
                        crooks::to_string(stream_.keys().key_of(k)),
                    static_cast<TxnIdx>(slot));
          }
        }
      }
    }
  }

  // Install — the tail of commit_placed. Retroactive inversions touch only
  // the timed levels, which a weak-only checker never tracks.
  for (model::KeyIdx k : stream_.write_keys(d)) {
    timelines_[k].emplace_back(p.state, static_cast<std::size_t>(d));
  }
  const SessionId s = stream_.session(d);
  if (s != kNoSession) session_states_[s].states.push_back(p.state);
  max_start_applied_ = std::max(max_start_applied_, stream_.start_ts(d));
  placed_bytes_ += placed_bytes(p);
  txns_.push_back(std::move(p));
}

void OnlineChecker::commit_placed(TxnIdx d, Placed p) {
  evaluate_new(d, p);
  if (assigned_mode_) {
    applied_mask_ |= static_cast<std::uint16_t>(
        1u << static_cast<unsigned>(assigned_level_of(d)));
  }
  check_retroactive_inversions(d);

  // Install.
  for (model::KeyIdx k : stream_.write_keys(d)) {
    timelines_[k].emplace_back(p.state, static_cast<std::size_t>(d));
  }
  const SessionId s = stream_.session(d);
  if (s != kNoSession) session_states_[s].states.push_back(p.state);
  max_start_applied_ = std::max(max_start_applied_, stream_.start_ts(d));
  placed_bytes_ += placed_bytes(p);
  txns_.push_back(std::move(p));
}

void OnlineChecker::evaluate_new(TxnIdx d, Placed& p) {
  const StateIndex parent = p.state - 1;
  const model::OpsView cops = stream_.ops(d);
  // Assigned mode evaluates exactly the transaction's own level: tracking()
  // reads current_level_ for the rest of this call.
  if (assigned_mode_) current_level_ = assigned_level_of(d);

  bool preread = true;
  StateIndex complete_lo = 0, complete_hi = parent;
  for (const OpView& o : p.ops) {
    if (o.rs.empty()) preread = false;
    complete_lo = std::max(complete_lo, o.rs.first);
    complete_hi = std::min(complete_hi, o.rs.last);
  }

  if (!preread) {
    for (IsolationLevel l : {IsolationLevel::kReadCommitted, IsolationLevel::kReadAtomic,
                             IsolationLevel::kPSI}) {
      if (tracking(l)) violate(l, d, "PREREAD fails in the apply order");
    }
  }

  // Fractured reads (RA).
  if (tracking(IsolationLevel::kReadAtomic) && preread) {
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m1 = cops.flags(i);
      if ((m1 & model::kOpWrite) != 0 || p.ops[i].internal ||
          (m1 & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w1 = cops.writer(i);
      if (w1 == model::kNoTxnIdx || w1 >= d) continue;  // not applied
      for (std::size_t j = 0; j < cops.size(); ++j) {
        if (cops.is_write(j) || p.ops[j].internal) continue;
        if (stream_.writes_key(w1, cops.key(j)) &&
            p.ops[i].rs.first > p.ops[j].rs.first) {
          violate(IsolationLevel::kReadAtomic, d,
                  "fractured read across " + crooks::to_string(stream_.id_of(w1)) +
                      "'s writes",
                  w1);
        }
      }
    }
  }

  // CAUS-VIS (PSI). Build the transitive PREC set from placed predecessors.
  // Assigned mode builds the set for EVERY transaction (preread permitting):
  // a PSI-level transaction arriving in a later block absorbs its
  // predecessors' closures, whatever levels those ran at.
  if ((tracking(IsolationLevel::kPSI) || assigned_mode_) && preread) {
    p.prec.recent.grow(static_cast<std::size_t>(d) - prec_origin_ + 1);
    for (std::size_t i = 0; i < cops.size(); ++i) {
      const std::uint8_t m = cops.flags(i);
      if ((m & model::kOpWrite) != 0 || p.ops[i].internal ||
          (m & model::kOpInitWriter) != 0) {
        continue;
      }
      const TxnIdx w = cops.writer(i);
      if (w != model::kNoTxnIdx && w < d) prec_absorb(p, w);
    }
    for (model::KeyIdx k : stream_.write_keys(d)) {
      if (const auto* tl = timeline_of(k)) {
        for (const auto& [pos, slot] : *tl) prec_absorb(p, slot);
      }
    }
    // The visibility check itself applies only when THIS transaction runs
    // at PSI.
    if (tracking(IsolationLevel::kPSI)) {
      for (std::size_t i = 0; i < cops.size(); ++i) {
        if (cops.is_write(i) || p.ops[i].internal) continue;
        if (const auto* tl = timeline_of(cops.key(i))) {
          for (const auto& [pos, slot] : *tl) {
            if (pos > p.ops[i].rs.last && prec_test(p, slot)) {
              violate(IsolationLevel::kPSI, d,
                      "CAUS-VIS fails: misses " +
                          crooks::to_string(stream_.id_of(static_cast<TxnIdx>(slot))) +
                          "'s write to " +
                          crooks::to_string(stream_.keys().key_of(cops.key(i))),
                      static_cast<TxnIdx>(slot));
            }
          }
        }
      }
    }
  }

  // Serializability: the parent state must be complete.
  const bool parent_complete = complete_lo <= parent && complete_hi >= parent;
  if (tracking(IsolationLevel::kSerializable) && !parent_complete) {
    violate(IsolationLevel::kSerializable, d,
            "parent state is not complete in the apply order");
  }
  if (tracking(IsolationLevel::kStrictSerializable) && !parent_complete) {
    violate(IsolationLevel::kStrictSerializable, d,
            "parent state is not complete in the apply order");
  }

  // The snapshot family.
  const IsolationLevel si_family[] = {IsolationLevel::kAdyaSI, IsolationLevel::kAnsiSI,
                                      IsolationLevel::kSessionSI,
                                      IsolationLevel::kStrongSI};
  StateIndex no_conf = 0;
  for (model::KeyIdx k : stream_.write_keys(d)) {
    if (const auto* tl = timeline_of(k)) {
      no_conf = std::max(no_conf, tl->back().first);
    }
  }
  // Real-time recency bound: # applied transactions with commit < start(d).
  // A timed level that is still alive has already enforced, at every prior
  // append, that the applied stream is fully timestamped (time-oracle clause)
  // and in strictly increasing commit order (C-ORD clause) — so the hashed
  // engine's O(n) time_precedes scan collapses to one binary search over the
  // dense prefix. Computed lazily: only timed levels that survive their
  // preconditions need it, and only they may trust it.
  //
  // Assigned mode voids the sorted invariant: untimed-level transactions
  // interleave (their kNoTimestamp never tripped any clause), so the
  // real-time bounds fall back to linear scans over the prefix. Only
  // timed-level transactions in a mixed stream pay that cost.
  const Timestamp start_t = stream_.start_ts(d);
  StateIndex pos_cache = -1;
  auto applied_before_start = [&]() -> StateIndex {
    if (pos_cache < 0) {
      if (assigned_mode_) {
        // Largest applied state whose generator time-precedes d. On a sorted
        // timed prefix this equals the binary-search count below; on a mixed
        // prefix the set of real-time predecessors need not be a prefix, and
        // the max is the correct snapshot lower bound.
        StateIndex max_state = 0;
        for (TxnIdx q = 0; q < d; ++q) {
          if (stream_.commit_ts(q) != kNoTimestamp &&
              stream_.commit_ts(q) < start_t) {
            max_state = std::max(max_state, static_cast<StateIndex>(q) + 1);
          }
        }
        pos_cache = max_state;
      } else {
        std::size_t lo = 0, hi = static_cast<std::size_t>(d);
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (stream_.commit_ts(static_cast<TxnIdx>(mid)) < start_t) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        pos_cache = static_cast<StateIndex>(lo);
      }
    }
    return pos_cache;
  };
  // s > 0 is admissible for a timed level iff its generating transaction
  // (dense s-1) real-time-precedes d.
  auto generator_precedes = [&](StateIndex s) {
    const TxnIdx g = static_cast<TxnIdx>(s - 1);
    return stream_.commit_ts(g) != kNoTimestamp && stream_.commit_ts(g) < start_t;
  };
  for (IsolationLevel level : si_family) {
    if (!tracking(level) || !status_ok(level)) continue;
    const bool timed = level != IsolationLevel::kAdyaSI;
    if (timed && !stream_.has_timestamps(d)) {
      violate(level, d, "requires the time oracle");
      continue;
    }
    if (timed && d > 0) {
      // In uniform mode the parent is necessarily timestamped (an untimed
      // parent already killed the level), so the kNoTimestamp conjunct only
      // bites in assigned mode, where an untimed parent IS out of commit
      // order for this execution (kNoTimestamp = INT64_MIN would otherwise
      // slip past the `<`).
      if (!(stream_.commit_ts(d - 1) != kNoTimestamp &&
            stream_.commit_ts(d - 1) < stream_.commit_ts(d))) {
        violate(level, d, "C-ORD fails: applied out of commit order", d - 1);
        continue;
      }
    }
    StateIndex lower = 0;
    if (level == IsolationLevel::kStrongSI) {
      lower = applied_before_start();
    } else if (level == IsolationLevel::kSessionSI &&
               stream_.session(d) != kNoSession) {
      if (auto sit = session_states_.find(stream_.session(d));
          sit != session_states_.end()) {
        const SessionRec& rec = sit->second;
        if (assigned_mode_) {
          // Largest same-session state whose generator time-precedes d —
          // the sorted-prefix shortcut below is not available here. The
          // retired marker's generator timestamps are retained columns, so
          // it participates exactly.
          for (StateIndex s : rec.states) {
            if (s > 0 && generator_precedes(s)) lower = std::max(lower, s);
          }
          if (rec.marker > 0 && generator_precedes(rec.marker)) {
            lower = std::max(lower, rec.marker);
          }
        } else {
          // Largest applied same-session state within the real-time prefix.
          const StateIndex pos = applied_before_start();
          auto it = std::upper_bound(rec.states.begin(), rec.states.end(), pos);
          if (it != rec.states.begin()) lower = *(it - 1);
          if (rec.marker <= pos) lower = std::max(lower, rec.marker);
        }
        // Session states dropped past the marker can only have RAISED the
        // bound; once any kept candidate reaches the marker they are all
        // dominated. Below it, this check is one-sided — count it.
        if (rec.dropped_any && lower < rec.marker) {
          ++stats_.past_window_checks;
          if (obs::enabled()) online_past_checks_total().inc();
        }
      }
    }
    const StateIndex lo = std::max({complete_lo, no_conf, lower});
    const StateIndex hi = std::min(complete_hi, parent);
    // ∃ admissible s ∈ [lo, hi]: s == 0 always qualifies; a timed level also
    // accepts any s whose generating transaction real-time-precedes d, i.e.
    // s ≤ applied_before_start() — so the descending scan reduces to bounds.
    bool ok = hi >= lo;
    if (ok && timed && lo > 0) {
      if (assigned_mode_) {
        // Mixed prefix: admissibility is not downward closed — scan.
        ok = false;
        for (StateIndex s = hi; s >= lo && !ok; --s) ok = generator_precedes(s);
      } else {
        ok = lo <= applied_before_start();
      }
    }
    if (!ok) {
      violate(level, d, "no admissible snapshot state in the apply order");
    }
  }
}

void OnlineChecker::prec_absorb(Placed& p, std::size_t slot) {
  prec_add(p, slot);
  if (slot >= placed_base_) {
    const Placed& w = placed_of(slot);
    // Same origin on both sides, so the word-wise OR is a straight union;
    // w's bitset never exceeds p's (w placed earlier, p grown to cover d).
    p.prec.recent.or_with(w.prec.recent);
    for (std::size_t s : w.prec.old) prec_add(p, s);
    return;
  }
  // Retired base slot: its closure, restricted to still-testable slots,
  // was summarized into base_prec_ at fold time. A key's base writer
  // absorbed every older writer of that key when it was placed, so this
  // covers the dropped writers transitively — the write-side absorb over a
  // folded timeline loses nothing.
  if (auto it = base_prec_.find(slot); it != base_prec_.end()) {
    for (std::size_t s : it->second) prec_add(p, s);
    return;
  }
  // Retired and no longer any key's base writer: its closure summary is
  // gone (only a read of a doubly-superseded version gets here). The PREC
  // set comes out a subset of the truth — one-sided, counted.
  ++stats_.past_window_checks;
  if (obs::enabled()) online_past_checks_total().inc();
}

void OnlineChecker::maybe_retire() {
  if (!window_.enabled() || txns_.empty()) return;
  std::size_t target = static_cast<std::size_t>(-1);
  if (window_.max_resident_txns != 0) target = window_.max_resident_txns;
  if (window_.max_resident_bytes != 0) {
    const std::size_t est = resident_bytes();
    if (est > window_.max_resident_bytes) {
      const std::size_t per = std::max<std::size_t>(est / txns_.size(), 1);
      target = std::min(
          target, std::max<std::size_t>(window_.max_resident_bytes / per, 16));
    }
  }
  if (txns_.size() <= target) return;
  std::size_t wm = stream_.size() - target;
  // Never retire a session's most recently applied transaction: a stalled
  // session pins the window (memory grows until it commits again) instead
  // of degrading its own recency verdicts.
  for (const auto& [sid, rec] : session_states_) {
    if (!rec.states.empty()) {
      wm = std::min(wm, static_cast<std::size_t>(rec.states.back()) - 1);
    }
  }
  // Hysteresis: a fold costs O(resident), so advance in quarter-window
  // steps — resident memory peaks at ~1.25× the target between folds.
  const std::size_t min_advance = std::max<std::size_t>(target / 4, 1);
  if (wm < placed_base_ + min_advance) return;
  fold_to(static_cast<TxnIdx>(wm));
}

void OnlineChecker::fold_to(TxnIdx upto) {
  obs::TraceSpan span("online.fold");
  const std::size_t M = static_cast<std::size_t>(upto);
  const std::size_t erase_n = M - placed_base_;

  // 1. Timelines: drop entries before the watermark, keeping each key's
  // newest retired writer as its base entry (NO-CONF's back() and the
  // CAUS-VIS walk stay exact for it); remember the largest dropped position
  // — reads of versions below it are the window's only read-side loss.
  std::vector<std::size_t> base_slots;
  for (std::size_t k = 0; k < timelines_.size(); ++k) {
    auto& tl = timelines_[k];
    if (tl.empty()) continue;
    // Entries are appended in apply order, so slots ascend.
    const auto cut = std::partition_point(
        tl.begin(), tl.end(), [&](const auto& en) { return en.second < M; });
    const std::size_t split = static_cast<std::size_t>(cut - tl.begin());
    if (split == 0) continue;
    if (split >= 2) {
      max_dropped_pos_[k] = std::max(max_dropped_pos_[k], tl[split - 2].first);
      tl.erase(tl.begin(), tl.begin() + static_cast<std::ptrdiff_t>(split - 1));
    }
    base_slots.push_back(tl.front().second);
  }
  std::sort(base_slots.begin(), base_slots.end());
  base_slots.erase(std::unique(base_slots.begin(), base_slots.end()),
                   base_slots.end());

  // 2. Retired closures: for every slot surviving as a base slot, keep
  // closure ∩ base slots — the only memberships a future test can ask for.
  // Newly retired slots harvest from their (still resident) PREC sets;
  // carried-over base slots prune their existing summaries.
  std::unordered_map<std::size_t, std::vector<std::size_t>> new_bp;
  new_bp.reserve(base_slots.size());
  for (std::size_t b : base_slots) {
    std::vector<std::size_t> closure;
    if (b >= placed_base_) {
      const Placed& pb = placed_of(b);
      for (std::size_t s : base_slots) {
        if (s != b && prec_test(pb, s)) closure.push_back(s);
      }
    } else if (auto it = base_prec_.find(b); it != base_prec_.end()) {
      closure = std::move(it->second);
      intersect_sorted(closure, base_slots);
    }
    new_bp.emplace(b, std::move(closure));
  }
  base_prec_ = std::move(new_bp);

  // 3. Sessions: state s was generated by dense slot s-1, so states ≤ M are
  // retired. Keep the largest as the recency marker; mark the record lossy
  // once anything beyond the marker is dropped.
  for (auto& [sid, rec] : session_states_) {
    auto& st = rec.states;
    const auto cut =
        std::upper_bound(st.begin(), st.end(), static_cast<StateIndex>(M));
    const std::size_t nret = static_cast<std::size_t>(cut - st.begin());
    if (nret == 0) continue;
    if (rec.marker > 0 || nret > 1) rec.dropped_any = true;
    rec.marker = st[nret - 1];
    st.erase(st.begin(), cut);
  }

  // 4. Surviving PREC sets: shift the origin by whole words, harvesting
  // dropped closure members that are still base slots into `old` and
  // discarding the rest (they can never be tested again).
  const std::size_t new_origin = (M / 64) * 64;
  const std::size_t dwords = (new_origin - prec_origin_) / 64;
  for (std::size_t i = erase_n; i < txns_.size(); ++i) {
    Placed& p = txns_[i];
    intersect_sorted(p.prec.old, base_slots);
    if (dwords != 0) {
      p.prec.recent.drop_words(dwords, [&](std::size_t idx) {
        const std::size_t slot = prec_origin_ + idx;
        if (std::binary_search(base_slots.begin(), base_slots.end(), slot)) {
          auto it = std::lower_bound(p.prec.old.begin(), p.prec.old.end(), slot);
          if (it == p.prec.old.end() || *it != slot) p.prec.old.insert(it, slot);
        }
      });
    }
  }

  // 5. Reclaim the placed prefix and re-measure the resident estimate.
  txns_.erase(txns_.begin(), txns_.begin() + static_cast<std::ptrdiff_t>(erase_n));
  if (txns_.capacity() > 2 * txns_.size() + 1024) txns_.shrink_to_fit();
  placed_base_ = M;
  prec_origin_ = new_origin;
  placed_bytes_ = 0;
  for (const Placed& p : txns_) placed_bytes_ += placed_bytes(p);

  // 6. Fold the compiled stream itself (op rows, masks, payloads, pending).
  const model::CompiledHistory::RetireStats rs = stream_.retire(upto);
  ++stats_.window_folds;
  stats_.retired_txns += rs.txns;
  stats_.retired_ops += rs.ops;
  if (obs::enabled()) {
    online_folds_total().inc();
    online_retired_txns_total().inc(rs.txns);
    online_retired_ops_total().inc(rs.ops);
    online_fold_txns_hist().observe(static_cast<double>(rs.txns));
    online_watermark_gauge().set(static_cast<std::int64_t>(M));
    online_resident_txns_gauge().set(static_cast<std::int64_t>(txns_.size()));
    online_resident_ops_gauge().set(
        static_cast<std::int64_t>(stream_.resident_ops()));
  }
  span.field("watermark", static_cast<std::uint64_t>(M))
      .field("retired", static_cast<std::uint64_t>(rs.txns))
      .field("resident", static_cast<std::uint64_t>(txns_.size()));
}

void OnlineChecker::check_retroactive_inversions(TxnIdx d) {
  // A late-arriving transaction that committed before an already-applied
  // transaction *started* retroactively violates the real-time clauses of
  // strict serializability and Strong SI (and Session SI within a session).
  const Timestamp commit_d = stream_.commit_ts(d);
  if (commit_d == kNoTimestamp) return;
  // ∃ applied q with commit(d) < start(q) ⟺ commit(d) < max applied start —
  // on a monotone stream (the common case) this skips the O(n) scan entirely.
  if (!(commit_d < max_start_applied_)) return;

  const TxnId late_id = stream_.id_of(d);
  const SessionId late_session = stream_.session(d);

  if (assigned_mode_) {
    // An inversion hits the applied transaction q at q's OWN level, so the
    // dispatch is per q, not per tracked level. applied_mask_ skips the scan
    // when no applied transaction holds a real-time/session clause.
    if (!assigned_status_.ok) return;
    auto bit = [](IsolationLevel l) {
      return static_cast<std::uint16_t>(1u << static_cast<unsigned>(l));
    };
    if ((applied_mask_ & (bit(IsolationLevel::kStrictSerializable) |
                          bit(IsolationLevel::kStrongSI) |
                          bit(IsolationLevel::kSessionSI))) == 0) {
      return;
    }
    // Scan the WHOLE applied stream, retired prefix included: timestamps,
    // sessions, ids and level tags are retained columns, so retroactive
    // inversions stay exact past the watermark.
    for (TxnIdx q = 0; q < d; ++q) {
      const IsolationLevel lq = assigned_level_of(q);
      if (lq != IsolationLevel::kStrictSerializable &&
          lq != IsolationLevel::kStrongSI && lq != IsolationLevel::kSessionSI) {
        continue;
      }
      if (!stream_.time_precedes(d, q)) continue;
      if (lq == IsolationLevel::kStrictSerializable) {
        violate(lq, q,
                "real-time predecessor " + crooks::to_string(late_id) +
                    " was applied after it",
                d);
      } else if (lq == IsolationLevel::kStrongSI) {
        violate(lq, q,
                "snapshot misses " + crooks::to_string(late_id) +
                    ", which committed before it started",
                d);
      } else if (stream_.session(q) != kNoSession &&
                 stream_.session(q) == late_session) {
        violate(lq, q,
                "session predecessor " + crooks::to_string(late_id) +
                    " was applied after it",
                d);
      }
    }
    return;
  }

  auto live = [&](IsolationLevel l) {
    auto it = statuses_.find(l);
    return it != statuses_.end() && it->second.ok;
  };
  if (!live(IsolationLevel::kStrictSerializable) && !live(IsolationLevel::kStrongSI) &&
      !live(IsolationLevel::kSessionSI)) {
    return;
  }

  // As above: the scan runs over retained columns, exact past the watermark.
  for (TxnIdx q = 0; q < d; ++q) {
    if (!stream_.time_precedes(d, q)) continue;
    if (tracking(IsolationLevel::kStrictSerializable)) {
      violate(IsolationLevel::kStrictSerializable, q,
              "real-time predecessor " + crooks::to_string(late_id) +
                  " was applied after it",
              d);
    }
    if (tracking(IsolationLevel::kStrongSI)) {
      violate(IsolationLevel::kStrongSI, q,
              "snapshot misses " + crooks::to_string(late_id) +
                  ", which committed before it started",
              d);
    }
    if (tracking(IsolationLevel::kSessionSI) && stream_.session(q) != kNoSession &&
        stream_.session(q) == late_session) {
      violate(IsolationLevel::kSessionSI, q,
              "session predecessor " + crooks::to_string(late_id) +
                  " was applied after it",
              d);
    }
  }
}

}  // namespace crooks::checker
