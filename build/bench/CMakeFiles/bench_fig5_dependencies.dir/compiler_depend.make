# Empty compiler generated dependencies file for bench_fig5_dependencies.
# This may be replaced when dependencies are built.
