file(REMOVE_RECURSE
  "CMakeFiles/slowdown_cascade.dir/slowdown_cascade.cpp.o"
  "CMakeFiles/slowdown_cascade.dir/slowdown_cascade.cpp.o.d"
  "slowdown_cascade"
  "slowdown_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slowdown_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
