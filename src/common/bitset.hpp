// A minimal dynamic bitset used for transitive-closure computations
// (PREC sets of the PSI commit test, reachability in serialization graphs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crooks {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// this |= other. `other` may be smaller (its missing tail is zero).
  void or_with(const DynamicBitset& other) {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t w = 0; w < n; ++w) words_[w] |= other.words_[w];
  }

  /// Grow to at least n bits (new bits are zero). Never shrinks.
  void grow(std::size_t n) {
    if (n > size_) {
      size_ = n;
      words_.resize((n + 63) / 64, 0);
    }
  }

  bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Invoke f(index) for every set bit, in increasing index order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Drop the first `nwords` 64-bit words, invoking f(old_index) for every
  /// set bit being dropped (ascending). Remaining bits shift down by
  /// 64*nwords — the epoch fold of the online checker's PREC sets, where the
  /// retired low slots are harvested into a summarized base representation.
  template <typename F>
  void drop_words(std::size_t nwords, F&& f) {
    nwords = std::min(nwords, words_.size());
    if (nwords == 0) return;
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
    words_.erase(words_.begin(),
                 words_.begin() + static_cast<std::ptrdiff_t>(nwords));
    size_ -= std::min(size_, nwords * 64);
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace crooks
