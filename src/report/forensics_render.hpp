// Rendering for the violation-forensics pattern table.
//
// Two exporters over one forensics::PatternTable, both consuming the table's
// canonical row order (count desc, first_seq asc, fingerprint asc) and
// nothing else — no wall-clock, no pointers, no locale — so the offline
// `crooks-check --forensics` replay and a `--follow` run over the same log
// render byte-identical output (the CI determinism gate diffs them).
#pragma once

#include <string>

#include "forensics/pattern_table.hpp"

namespace crooks::report {

/// The human "violation forensics" report section. Every line is indented
/// under a section header and ends with '\n'; empty tables render a single
/// "no violation witnesses" line. Rates are integer per-mille of the witness
/// total (never floating point).
std::string render_forensics(const forensics::PatternTable& table);

/// Machine export (`--forensics-json`): one line of JSON, '\n'-terminated.
///   {"witnesses":N,"patterns":N,"overflow":N,
///    "table":[{pattern id, name, clause, shape, count, rate_pm, first/last
///              witness sequence numbers, per-level and per-engine splits,
///              hot keys/sessions, truncated count, exemplar witness}, ...],
///    "mined":[{id,name,shape,support}, ...]}
/// Pattern ids are the 16-hex-digit canonical fingerprints.
std::string forensics_json(const forensics::PatternTable& table);

}  // namespace crooks::report
