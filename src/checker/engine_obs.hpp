// Shared observability glue for the checker engines: every engine wrapper
// counts its verdict into crooks_checks_total{engine,outcome} and times the
// end-to-end check into crooks_check_seconds{engine}, so dashboards can
// compare engines on one pair of series.
#pragma once

#include <optional>
#include <string>

#include "checker/checker.hpp"
#include "model/compiled.hpp"
#include "obs/metrics.hpp"

namespace crooks::checker::engine_obs {

/// Engines answer ∃e over the FULL history; a history whose prefix was
/// folded by CompiledHistory::retire no longer has one (the prefix's ops are
/// reclaimed). Every offline entry point taking a CompiledHistory refuses
/// such a history with an honest kUnknown instead of reading reclaimed
/// arrays — the windowed OnlineChecker is the component that audits past a
/// retirement watermark.
inline std::optional<CheckResult> refuse_retired(const model::CompiledHistory& ch) {
  if (ch.retired() == 0) return std::nullopt;
  return CheckResult{
      Outcome::kUnknown, std::nullopt,
      "history has a retired (memory-folded) prefix of " +
          std::to_string(ch.retired()) +
          " transactions; offline engines need the full history — use the "
          "windowed online checker for streaming verdicts",
      0};
}

inline const char* outcome_word(Outcome o) {
  switch (o) {
    case Outcome::kSatisfiable: return "sat";
    case Outcome::kUnsatisfiable: return "unsat";
    case Outcome::kUnknown: return "unknown";
  }
  return "?";
}

/// crooks_checks_total{engine,outcome}. One registry lookup per verdict —
/// verdict granularity, never hot-loop granularity.
inline obs::Counter& checks_counter(const std::string& engine, Outcome o) {
  return obs::Registry::global().counter(
      "crooks_checks_total", "Check verdicts by engine and outcome",
      {{"engine", engine}, {"outcome", outcome_word(o)}});
}

/// crooks_check_seconds{engine}; cache the reference (function-local static)
/// at the call site — the registry keeps addresses stable across reset().
inline obs::Histogram& check_latency(const char* engine) {
  return obs::Registry::global().histogram(
      "crooks_check_seconds", "End-to-end check latency by engine",
      obs::latency_buckets_seconds(), {{"engine", engine}});
}

}  // namespace crooks::checker::engine_obs
